//! Property tests for the discrete-event engine: ordering, determinism,
//! conservation, and accounting invariants. Runs on the in-tree
//! `neat_util::check` harness (seeded generation + shrinking).

use neat_sim::{Ctx, Event, MachineSpec, ProcId, Process, Sim, SimConfig, Time};
use neat_util::check::{check, vec_of, Config};
use neat_util::{prop_assert, prop_assert_eq};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone)]
enum M {
    Work { cost: u64, reply_to: Option<ProcId> },
    Done,
}

/// Records every (time, payload) it sees.
struct Recorder {
    log: Rc<RefCell<Vec<(u64, u64)>>>,
}
impl Process<M> for Recorder {
    fn name(&self) -> String {
        "recorder".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
        if let Event::Message {
            msg: M::Work { cost, reply_to },
            ..
        } = ev
        {
            ctx.charge(cost);
            self.log.borrow_mut().push((ctx.now().as_nanos(), cost));
            if let Some(to) = reply_to {
                ctx.send(to, M::Done);
            }
        }
    }
}

/// Per-process handling start times are non-decreasing, and every
/// message sent is eventually handled exactly once.
#[test]
fn fifo_order_and_conservation() {
    check(
        "fifo_order_and_conservation",
        Config::default().cases(48),
        |rng| vec_of(rng, 1..60, |r| r.gen_range(100u64..100_000)),
        |costs| {
            if costs.is_empty() {
                return Ok(());
            }
            let mut sim: Sim<M> = Sim::new(SimConfig::default());
            let m = sim.add_machine(MachineSpec::amd_opteron_6168());
            let t = sim.hw_thread(m, 0, 0);
            let log = Rc::new(RefCell::new(Vec::new()));
            let p = sim.spawn(t, Box::new(Recorder { log: log.clone() }));
            for c in &costs {
                sim.send_external(
                    p,
                    M::Work {
                        cost: *c,
                        reply_to: None,
                    },
                );
            }
            sim.run_until(Time::from_secs(10));
            let log = log.borrow();
            prop_assert_eq!(log.len(), costs.len(), "every message handled once");
            // Handling order == send order (FIFO), and start times monotone.
            for (i, (ts, c)) in log.iter().enumerate() {
                prop_assert_eq!(*c, costs[i], "FIFO");
                if i > 0 {
                    prop_assert!(*ts >= log[i - 1].0, "monotone start times");
                }
            }
            Ok(())
        },
    );
}

/// Identical seeds produce identical histories; randomness is only used
/// by processes, not the engine, so this pins the engine's determinism.
#[test]
fn determinism() {
    check(
        "determinism",
        Config::default().cases(48),
        |rng| {
            (
                vec_of(rng, 1..40, |r| r.gen_range(100u64..50_000)),
                rng.gen::<u64>(),
            )
        },
        |(costs, seed)| {
            if costs.is_empty() {
                return Ok(());
            }
            let run = |seed: u64| {
                let mut sim: Sim<M> = Sim::new(SimConfig {
                    seed,
                    ..SimConfig::default()
                });
                let m = sim.add_machine(MachineSpec::xeon_e5520_dual());
                let t0 = sim.hw_thread(m, 0, 0);
                let t1 = sim.hw_thread(m, 0, 1);
                let log = Rc::new(RefCell::new(Vec::new()));
                let a = sim.spawn(t0, Box::new(Recorder { log: log.clone() }));
                let b = sim.spawn(t1, Box::new(Recorder { log: log.clone() }));
                for (i, c) in costs.iter().enumerate() {
                    sim.send_external(
                        if i % 2 == 0 { a } else { b },
                        M::Work {
                            cost: *c,
                            reply_to: None,
                        },
                    );
                }
                sim.run_until(Time::from_secs(5));
                let l = log.borrow().clone();
                (l, sim.events_dispatched(), sim.now())
            };
            prop_assert_eq!(run(seed), run(seed));
            Ok(())
        },
    );
}

/// Busy time equals the sum of charged costs (converted at the clock),
/// regardless of arrival pattern — no work is lost or double-counted.
#[test]
fn busy_time_accounting() {
    check(
        "busy_time_accounting",
        Config::default().cases(48),
        |rng| {
            (
                vec_of(rng, 1..40, |r| r.gen_range(1_000u64..200_000)),
                rng.gen_range(0u64..50_000),
            )
        },
        |(costs, gap_ns)| {
            if costs.is_empty() {
                return Ok(());
            }
            let mut sim: Sim<M> = Sim::new(SimConfig::default());
            let m = sim.add_machine(MachineSpec::amd_opteron_6168());
            let t = sim.hw_thread(m, 0, 0);
            let log = Rc::new(RefCell::new(Vec::new()));
            let p = sim.spawn(t, Box::new(Recorder { log }));
            sim.run_until(Time::from_micros(1));
            sim.reset_all_stats();
            let mut at = sim.now();
            for c in &costs {
                // Space arrivals; the engine must account identically whether
                // they queue or arrive at an idle thread.
                sim.run_until(at);
                sim.send_external(
                    p,
                    M::Work {
                        cost: *c,
                        reply_to: None,
                    },
                );
                at += Time::from_nanos(gap_ns);
            }
            sim.run_until(Time::from_secs(10));
            let st = sim.thread_stats(t);
            // dispatch cost (MSG_RECV=100) is added per message.
            let total_cycles: u64 = costs.iter().map(|c| c + 100).sum();
            let expect_ns = neat_sim::Freq::ghz(1.9)
                .cycles_to_time(total_cycles)
                .as_nanos();
            let got = st.busy_ns;
            let tol = expect_ns / 100 + costs.len() as u64 + 10;
            prop_assert!(
                got >= expect_ns.saturating_sub(tol) && got <= expect_ns + tol,
                "busy {got} vs expected {expect_ns}"
            );
            Ok(())
        },
    );
}

#[derive(Debug, Clone)]
enum BM {
    Payload(Vec<u8>),
}

/// Sends a scripted trace of payload bursts, spaced by timers, so the
/// coalescer sees a mix of same-instant runs and cross-horizon gaps.
struct BurstSender {
    dst: ProcId,
    bursts: Vec<(u64, Vec<Vec<u8>>)>,
    next: usize,
}
impl Process<BM> for BurstSender {
    fn name(&self) -> String {
        "burst-sender".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, BM>, ev: Event<BM>) {
        match ev {
            Event::Start | Event::Timer { .. } => {
                if let Some((gap, msgs)) = self.bursts.get(self.next).cloned() {
                    self.next += 1;
                    for m in msgs {
                        ctx.send(self.dst, BM::Payload(m));
                    }
                    ctx.set_timer(Time::from_nanos(gap.max(1)), 0);
                }
            }
            _ => {}
        }
    }
}

/// Concatenates each sender's payload bytes in arrival order.
struct StreamSink {
    streams: Rc<RefCell<std::collections::BTreeMap<u64, Vec<u8>>>>,
}
impl Process<BM> for StreamSink {
    fn name(&self) -> String {
        "stream-sink".into()
    }
    fn on_event(&mut self, _ctx: &mut Ctx<'_, BM>, ev: Event<BM>) {
        if let Event::Message {
            from,
            msg: BM::Payload(p),
        } = ev
        {
            self.streams
                .borrow_mut()
                .entry(from.0)
                .or_default()
                .extend_from_slice(&p);
        }
    }
}

/// Link coalescing is invisible to applications: for a random traffic
/// trace, the per-(src,dst) byte streams a receiver observes are
/// byte-identical, in identical order, with batching on and off.
#[test]
fn batching_preserves_per_link_streams() {
    check(
        "batching_preserves_per_link_streams",
        Config::default().cases(32),
        |rng| {
            let senders = rng.gen_range(1usize..4);
            let traces: Vec<Vec<(u64, Vec<Vec<u8>>)>> = (0..senders)
                .map(|_| {
                    vec_of(rng, 1..8, |r| {
                        let gap = r.gen_range(100u64..6_000);
                        let burst = vec_of(r, 1..10, |r2| vec_of(r2, 1..12, |r3| r3.gen::<u8>()));
                        (gap, burst)
                    })
                })
                .collect();
            let batch_ns = rng.gen_range(500u64..4_000);
            let batch_max = rng.gen_range(2usize..16);
            (traces, batch_ns, batch_max)
        },
        |(traces, batch_ns, batch_max)| {
            let run = |batch_ns: u64, batch_max: usize| {
                let mut sim: Sim<BM> = Sim::new(SimConfig {
                    batch_ns,
                    batch_max,
                    ..SimConfig::default()
                });
                let m = sim.add_machine(MachineSpec::xeon_e5520_dual());
                let sink_t = sim.hw_thread(m, 0, 0);
                let streams = Rc::new(RefCell::new(std::collections::BTreeMap::new()));
                let sink = sim.spawn(
                    sink_t,
                    Box::new(StreamSink {
                        streams: streams.clone(),
                    }),
                );
                for (i, trace) in traces.iter().enumerate() {
                    let t = sim.hw_thread(m, 1 + (i % 3) as u32, 0);
                    sim.spawn(
                        t,
                        Box::new(BurstSender {
                            dst: sink,
                            bursts: trace.clone(),
                            next: 0,
                        }),
                    );
                }
                sim.run_until(Time::from_millis(10));
                let out = streams.borrow().clone();
                out
            };
            let unbatched = run(0, batch_max);
            let batched = run(batch_ns, batch_max);
            prop_assert_eq!(
                unbatched.values().map(Vec::len).sum::<usize>(),
                traces
                    .iter()
                    .flat_map(|t| t.iter().flat_map(|(_, b)| b.iter().map(Vec::len)))
                    .sum::<usize>(),
                "all payload bytes delivered"
            );
            // ProcIds differ per run only if spawn order differs — it does
            // not, so keys line up; compare stream-by-stream.
            prop_assert_eq!(batched, unbatched, "per-link streams identical");
            Ok(())
        },
    );
}

/// Histogram quantiles are monotone in q and bounded by min/max.
#[test]
fn histogram_quantile_monotone() {
    check(
        "histogram_quantile_monotone",
        Config::default().cases(96),
        |rng| vec_of(rng, 1..200, |r| r.gen_range(1u64..10_000_000)),
        |values| {
            if values.is_empty() {
                return Ok(());
            }
            let mut h = neat_sim::Histogram::new();
            for v in &values {
                h.record(Time::from_nanos(*v));
            }
            let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
            let mut prev = Time::ZERO;
            for q in qs {
                let x = h.quantile(q);
                prop_assert!(x >= prev, "monotone at q={q}");
                prev = x;
            }
            prop_assert!(h.quantile(1.0) <= h.max());
            prop_assert!(h.mean() <= h.max());
            prop_assert!(h.mean() >= h.min());
            Ok(())
        },
    );
}

/// JSON summaries of stats are well-formed and carry the right counts —
/// the machine-readable results path stays consistent with the render.
#[test]
fn stats_to_json_consistent() {
    use neat_util::ToJson;
    check(
        "stats_to_json_consistent",
        Config::default().cases(32),
        |rng| vec_of(rng, 1..100, |r| r.gen_range(1u64..1_000_000)),
        |values| {
            if values.is_empty() {
                return Ok(());
            }
            let mut h = neat_sim::Histogram::new();
            for v in &values {
                h.record(Time::from_nanos(*v));
            }
            let rendered = h.to_json().render();
            prop_assert!(
                rendered.contains(&format!("\"count\":{}", values.len())),
                "count field: {rendered}"
            );
            prop_assert!(rendered.starts_with('{') && rendered.ends_with('}'));
            Ok(())
        },
    );
}
