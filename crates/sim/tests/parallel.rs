//! Shard synchronization edge cases and the bit-identical-parallelism
//! contract: fixed-seed runs must produce the exact same history on the
//! serial engine and at every shard count, including when messages land
//! exactly on a window boundary, when links are zero-latency and local,
//! and when the topology degenerates to a single machine.

use std::sync::{Arc, Mutex};

use neat_sim::calibration::CHANNEL_LATENCY;
use neat_sim::{Ctx, Event, MachineSpec, ProcId, Process, Sim, SimConfig, Time};

type Log = Arc<Mutex<Vec<(u64, u64)>>>;

#[derive(Debug, Clone)]
enum M {
    /// Ring traffic between machines; payload = remaining hops.
    Ping(u64),
    /// Machine-local traffic to the sink.
    Token(u64),
}

const LINK_NS: u64 = 800;

/// A worker process: rings Pings across machines, feeds Tokens to its
/// machine-local sink, burns RNG-dependent work, and re-arms timers.
struct Worker {
    peer: ProcId,
    sink: ProcId,
    log: Log,
    timers_left: u64,
}

impl Process<M> for Worker {
    fn name(&self) -> String {
        "worker".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
        match ev {
            Event::Start => {
                ctx.set_timer(Time::from_micros(5), 1);
                ctx.send_delayed(self.peer, M::Ping(40), Time(LINK_NS));
            }
            Event::Message {
                msg: M::Ping(v), ..
            } => {
                self.log.lock().unwrap().push((ctx.now().as_nanos(), v));
                // RNG-dependent work: any cross-machine draw leakage would
                // desynchronize this charge between shard counts.
                let cost = ctx.rng().gen_range(500u64..5_000);
                ctx.charge(cost);
                ctx.send(self.sink, M::Token(v));
                if v > 0 {
                    ctx.send_delayed(self.peer, M::Ping(v - 1), Time(LINK_NS));
                }
            }
            Event::Timer { .. } => {
                ctx.send(self.sink, M::Token(1_000 + self.timers_left));
                if self.timers_left > 0 {
                    self.timers_left -= 1;
                    ctx.set_timer(Time::from_micros(5), 1);
                }
            }
            _ => {}
        }
    }
}

/// A machine-local sink: logs everything it receives (zero-latency
/// self-machine links, possibly coalesced into batches).
struct Sink {
    log: Log,
}

impl Process<M> for Sink {
    fn name(&self) -> String {
        "sink".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
        if let Event::Message {
            msg: M::Token(v), ..
        } = ev
        {
            self.log.lock().unwrap().push((ctx.now().as_nanos(), v));
        }
    }
}

/// Build an `n`-machine ring topology; returns the sim plus one log per
/// process (workers first, then sinks, in machine order).
fn ring(n: usize, batch_ns: u64) -> (Sim<M>, Vec<Log>) {
    let mut sim = Sim::new(SimConfig {
        seed: 0xDE7E_4213,
        batch_ns,
        link_latency_ns: LINK_NS,
        ..SimConfig::default()
    });
    let machines: Vec<_> = (0..n)
        .map(|_| sim.add_machine(MachineSpec::amd_opteron_6168()))
        .collect();
    // Pids are deterministic (per-machine allocators), so we can predict
    // each machine's worker/sink ids by spawning in a fixed order.
    let mut logs = Vec::new();
    let mut sink_ids = Vec::new();
    let mut sink_logs = Vec::new();
    for &m in &machines {
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let sink = sim.spawn(sim.hw_thread(m, 1, 0), Box::new(Sink { log: log.clone() }));
        sink_ids.push(sink);
        sink_logs.push(log);
    }
    for (i, &m) in machines.iter().enumerate() {
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        // Ring: worker i pings the worker on machine i+1. Worker pids are
        // allocated after sinks, in machine order, as the *second* pid of
        // each machine — compute the peer's pid the same way the engine
        // will allocate it.
        let next = machines[(i + 1) % n];
        let peer = ProcId(((next.0 as u64 + 1) << 40) | 2);
        sim.spawn(
            sim.hw_thread(m, 0, 0),
            Box::new(Worker {
                peer,
                sink: sink_ids[i],
                log: log.clone(),
                timers_left: 20,
            }),
        );
        logs.push(log);
    }
    logs.extend(sink_logs);
    (sim, logs)
}

/// Everything observable about a finished run, for equality comparison.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    now_ns: u64,
    dispatched: u64,
    logs: Vec<Vec<(u64, u64)>>,
    thread_busy: Vec<(u64, u64)>, // (busy_ns, events) per active thread
    batch: neat_sim::BatchStats,
}

fn fingerprint(sim: &Sim<M>, logs: &[Log], dispatched: u64) -> Fingerprint {
    let mut thread_busy = Vec::new();
    for t in 0..sim.num_hw_threads() {
        let st = sim.thread_stats(neat_sim::HwThreadId(t));
        if st.events > 0 {
            thread_busy.push((st.busy_ns, st.events));
        }
    }
    Fingerprint {
        now_ns: sim.now().as_nanos(),
        dispatched,
        logs: logs.iter().map(|l| l.lock().unwrap().clone()).collect(),
        thread_busy,
        batch: sim.batch_stats(),
    }
}

fn run_ring(n: usize, batch_ns: u64, shards: usize, horizon: Time) -> Fingerprint {
    let (mut sim, logs) = ring(n, batch_ns);
    let dispatched = if shards == 0 {
        sim.run_until(horizon)
    } else {
        sim.run_sharded(horizon, shards)
    };
    fingerprint(&sim, &logs, dispatched)
}

#[test]
fn sharded_runs_are_bit_identical_to_serial() {
    let horizon = Time::from_millis(2);
    let serial = run_ring(4, 0, 0, horizon);
    assert!(
        serial.dispatched > 200,
        "scenario too small to be meaningful: {} events",
        serial.dispatched
    );
    for shards in [1, 2, 4, 8] {
        let par = run_ring(4, 0, shards, horizon);
        assert_eq!(serial, par, "history diverged at {shards} shards");
    }
}

#[test]
fn sharded_runs_with_batching_are_bit_identical() {
    // Per-link coalescing adds FlushBatch events and epoch bookkeeping;
    // all of it is machine-local and must stay shard-invariant.
    let horizon = Time::from_millis(2);
    let serial = run_ring(4, 2_000, 0, horizon);
    for shards in [2, 4] {
        let par = run_ring(4, 2_000, shards, horizon);
        assert_eq!(serial, par, "batched history diverged at {shards} shards");
    }
    // And batching must actually have engaged, or the test is vacuous.
    assert!(serial.batch.batch_deliveries > 0);
}

#[test]
fn single_machine_topology_degenerates_to_serial() {
    // One machine: any shard count clamps to 1 and must take the serial
    // path, byte-identical event order included.
    let horizon = Time::from_millis(1);
    let serial = run_ring(1, 0, 0, horizon);
    for shards in [1, 4, 8] {
        let par = run_ring(1, 0, shards, horizon);
        assert_eq!(
            serial, par,
            "single-machine run diverged at {shards} shards"
        );
    }
    // Degenerate runs report exactly one shard.
    let (mut sim, _) = ring(1, 0);
    sim.run_sharded(horizon, 8);
    assert_eq!(sim.par_stats().shards, 1);
    assert_eq!(sim.par_stats().windows, 0, "serial path runs no windows");
}

/// Pure metronome: zero-cost tick at exactly every `period`, `left` times.
/// Its ticks pin each conservative window's start to an exact multiple of
/// the lookahead.
struct Ticker {
    period: Time,
    left: u64,
    log: Log,
}

impl Process<M> for Ticker {
    fn name(&self) -> String {
        "ticker".into()
    }
    fn dispatch_cost(&self) -> u64 {
        0
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
        if matches!(ev, Event::Start | Event::Timer { .. }) {
            self.log
                .lock()
                .unwrap()
                .push((ctx.now().as_nanos(), self.left));
            if self.left > 0 {
                self.left -= 1;
                ctx.set_timer(self.period, 1);
            }
        }
    }
}

/// Fires a cross-machine ping on every timer tick, phase-tuned so that the
/// delivery instant is an exact multiple of the lookahead — i.e. exactly
/// the end of the window the send executes in.
struct Sender {
    peer: ProcId,
    rearm: Time,
    extra: Time,
    left: u64,
}

impl Process<M> for Sender {
    fn name(&self) -> String {
        "sender".into()
    }
    fn dispatch_cost(&self) -> u64 {
        0
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
        match ev {
            Event::Start => ctx.set_timer(Time(850), 1),
            Event::Timer { .. } if self.left > 0 => {
                self.left -= 1;
                ctx.send_delayed(self.peer, M::Ping(self.left), self.extra);
                if self.left > 0 {
                    ctx.set_timer(self.rearm, 1);
                }
            }
            _ => {}
        }
    }
}

/// Logs received pings (zero-cost, no replies).
struct Receiver {
    log: Log,
}

impl Process<M> for Receiver {
    fn name(&self) -> String {
        "receiver".into()
    }
    fn dispatch_cost(&self) -> u64 {
        0
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
        if let Event::Message {
            msg: M::Ping(v), ..
        } = ev
        {
            self.log.lock().unwrap().push((ctx.now().as_nanos(), v));
        }
    }
}

#[test]
fn message_exactly_on_window_boundary() {
    // Machine A carries a zero-cost ticker with period == lookahead, so
    // window k is exactly [k*L, (k+1)*L). A's sender fires at t = 850+k*L;
    // at 1.2 GHz the MSG_SEND charge is exactly 100ns, so the ping to
    // machine B is delivered at 850+k*L + 100 + 250 + 900 = (k+2)*L —
    // *exactly* on a window boundary. Windows are half-open, so the
    // delivery must be deferred to the window that *opens* at its time,
    // never executed in the window whose end it touches; the serial and
    // 2-shard histories must agree on all of it.
    const L: u64 = CHANNEL_LATENCY.0 + LINK_NS; // 1050
    const SEND_NS: u64 = 100; // MSG_SEND (120 cycles) at 1.2 GHz
    let pings = 40u64;
    let ticks = pings + 2;
    let spec = || MachineSpec {
        name: "boundary".into(),
        cores: 2,
        threads_per_core: 1,
        freq: neat_sim::Freq::ghz(1.2),
    };
    let build = || {
        let mut sim: Sim<M> = Sim::new(SimConfig {
            seed: 7,
            link_latency_ns: LINK_NS,
            ..SimConfig::default()
        });
        let a = sim.add_machine(spec());
        let b = sim.add_machine(spec());
        let tick_log: Log = Arc::new(Mutex::new(Vec::new()));
        let recv_log: Log = Arc::new(Mutex::new(Vec::new()));
        sim.spawn(
            sim.hw_thread(a, 0, 0),
            Box::new(Ticker {
                period: Time(L),
                left: ticks - 1,
                log: tick_log.clone(),
            }),
        );
        // First pid on machine k is ((k+1) << 40) | 1: B's receiver.
        let pid_b = ProcId((2u64 << 40) | 1);
        sim.spawn(
            sim.hw_thread(b, 0, 0),
            Box::new(Receiver {
                log: recv_log.clone(),
            }),
        );
        sim.spawn(
            sim.hw_thread(a, 1, 0),
            Box::new(Sender {
                peer: pid_b,
                rearm: Time(L - SEND_NS),
                extra: Time(LINK_NS + SEND_NS),
                left: pings,
            }),
        );
        (sim, tick_log, recv_log)
    };

    let horizon = Time(L * (ticks + 2));
    let (mut serial, stick, srecv) = build();
    let sdisp = serial.run_until(horizon);
    let serial_ticks = stick.lock().unwrap().clone();
    let serial_recv = srecv.lock().unwrap().clone();
    assert_eq!(serial_recv.len(), pings as usize);
    for (i, &(t, _)) in serial_recv.iter().enumerate() {
        assert_eq!(
            t,
            (i as u64 + 2) * L,
            "ping {i} must land exactly on a window boundary"
        );
    }
    assert_eq!(serial_ticks.len(), ticks as usize);

    let (mut par, ptick, precv) = build();
    let pdisp = par.run_sharded(horizon, 2);
    assert_eq!(sdisp, pdisp);
    assert_eq!(serial_ticks, *ptick.lock().unwrap());
    assert_eq!(serial_recv, *precv.lock().unwrap());
    let stats = par.par_stats();
    assert_eq!(stats.shards, 2);
    assert_eq!(
        stats.handoffs, pings,
        "every ping crosses the shard boundary"
    );
    assert_eq!(
        stats.windows, ticks,
        "boundary deliveries must not open extra windows or land early"
    );
}

#[test]
fn zero_latency_self_links_stay_local_and_identical() {
    // A machine talking only to itself (zero extra delay) across two
    // machines in one sim: no handoffs should ever occur, and the history
    // must match the serial engine exactly.
    struct SelfTalker {
        sink: ProcId,
        log: Log,
        rounds: u64,
    }
    impl Process<M> for SelfTalker {
        fn name(&self) -> String {
            "selftalker".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
            match ev {
                Event::Start => ctx.send(self.sink, M::Token(self.rounds)),
                Event::Message {
                    msg: M::Token(v), ..
                } => {
                    self.log.lock().unwrap().push((ctx.now().as_nanos(), v));
                    ctx.charge(ctx_cost(v));
                    if v > 0 {
                        ctx.send(self.sink, M::Token(v - 1));
                    }
                }
                _ => {}
            }
        }
    }
    fn ctx_cost(v: u64) -> u64 {
        1_000 + (v % 7) * 300
    }

    let build = || {
        let mut sim: Sim<M> = Sim::new(SimConfig {
            seed: 11,
            ..SimConfig::default()
        });
        let mut logs = Vec::new();
        for k in 0..2u64 {
            let m = sim.add_machine(MachineSpec::amd_opteron_6168());
            let log: Log = Arc::new(Mutex::new(Vec::new()));
            // Self-link: the process sends to its *own* pid's machine —
            // here simply to itself via its own sink id (same thread).
            let self_pid = ProcId(((k + 1) << 40) | 1);
            sim.spawn(
                sim.hw_thread(m, 0, 0),
                Box::new(SelfTalker {
                    sink: self_pid,
                    log: log.clone(),
                    rounds: 50,
                }),
            );
            logs.push(log);
        }
        (sim, logs)
    };

    let horizon = Time::from_millis(1);
    let (mut serial, slogs) = build();
    let sd = serial.run_until(horizon);
    let (mut par, plogs) = build();
    let pd = par.run_sharded(horizon, 2);
    assert_eq!(sd, pd);
    for (s, p) in slogs.iter().zip(&plogs) {
        assert_eq!(*s.lock().unwrap(), *p.lock().unwrap());
    }
    assert!(!slogs[0].lock().unwrap().is_empty());
    assert_eq!(
        par.par_stats().handoffs,
        0,
        "self-links must never cross shards"
    );
    // The sharded run still windows through time (many local events per
    // window — the drain loop, not one window per event).
    assert!(par.par_stats().windows > 0);
    assert!(
        par.par_stats().windows < pd,
        "local chains must not open one window per event"
    );
}

#[test]
#[should_panic(expected = "below the declared link latency")]
fn undeclared_cross_machine_latency_is_rejected() {
    // The declared link latency is the parallel executor's lookahead; a
    // cross-machine send below it would break conservative windows, so
    // the engine rejects it in *both* execution modes.
    struct Cheater {
        peer: ProcId,
    }
    impl Process<M> for Cheater {
        fn name(&self) -> String {
            "cheater".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
            if let Event::Start = ev {
                ctx.send(self.peer, M::Ping(1)); // zero extra delay: illegal
            }
        }
    }
    let mut sim: Sim<M> = Sim::new(SimConfig {
        link_latency_ns: LINK_NS,
        ..SimConfig::default()
    });
    let a = sim.add_machine(MachineSpec::amd_opteron_6168());
    let _b = sim.add_machine(MachineSpec::amd_opteron_6168());
    let pid_b = ProcId((2u64 << 40) | 1);
    sim.spawn(sim.hw_thread(a, 0, 0), Box::new(Cheater { peer: pid_b }));
    sim.run_until(Time::from_millis(1));
}
