//! A small JSON value model and writer (serialize only).
//!
//! The workspace only ever *emits* JSON — machine-readable copies of the
//! paper tables under `results/` — so this is a writer, not a parser.
//! Object fields keep insertion order, floats use Rust's shortest
//! round-trip formatting, and non-finite floats serialize as `null`
//! (matching `serde_json`'s default behaviour).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object (insertion-ordered).
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Add a field to an object (builder style). Panics on non-objects.
    pub fn field(mut self, key: impl Into<String>, value: impl ToJson) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.into(), value.to_json())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Serialize to a compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the serialization of `self` to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let mut buf = itoa_buf();
                out.push_str(write_display(&mut buf, i));
            }
            Json::UInt(u) => {
                let mut buf = itoa_buf();
                out.push_str(write_display(&mut buf, u));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut buf = itoa_buf();
                    let s = write_display(&mut buf, f);
                    out.push_str(s);
                    // `{}` prints integral floats without a dot; keep the
                    // value unambiguously a float on the wire.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn itoa_buf() -> String {
    String::with_capacity(24)
}

fn write_display<'a>(buf: &'a mut String, v: &impl fmt::Display) -> &'a str {
    use fmt::Write as _;
    buf.clear();
    let _ = write!(buf, "{v}");
    buf.as_str()
}

/// JSON string escaping per RFC 8259: `"`/`\`, the C0 controls, and the
/// common short escapes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value — the crate-local stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
to_json_int!(i8, i16, i32, i64, isize);

macro_rules! to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
to_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for u128 {
    fn to_json(&self) -> Json {
        // Counts can exceed u64 in theory; clamp rather than wrap.
        Json::UInt((*self).min(u64::MAX as u128) as u64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(3.0).render(), "3.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn string_escaping_exact() {
        assert_eq!(Json::Str("hello".into()).render(), r#""hello""#);
        assert_eq!(
            Json::Str("a\"b\\c\nd\te".into()).render(),
            r#""a\"b\\c\nd\te""#
        );
        assert_eq!(Json::Str("\u{0001}".into()).render(), "\"\\u0001\"");
        assert_eq!(
            Json::Str("naïve — ünïcode".into()).render(),
            "\"naïve — ünïcode\""
        );
    }

    #[test]
    fn nested_structure_exact() {
        let v = Json::object()
            .field("name", "fig7")
            .field("krps", 302.4f64)
            .field("replicas", 3u64)
            .field("rows", vec![1u64, 2, 3])
            .field("missing", Option::<u64>::None);
        assert_eq!(
            v.render(),
            r#"{"name":"fig7","krps":302.4,"replicas":3,"rows":[1,2,3],"missing":null}"#
        );
    }

    #[test]
    fn float_shortest_roundtrip() {
        // Rust's `{}` float formatting is shortest-round-trip; parsing the
        // rendered text recovers the exact value.
        for x in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let s = Json::Float(x).render();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn display_matches_render() {
        let v = Json::Array(vec![Json::Int(1), Json::Str("x".into())]);
        assert_eq!(format!("{v}"), v.render());
    }
}
