//! A small JSON value model, writer, and parser.
//!
//! The workspace *emits* JSON everywhere — machine-readable copies of the
//! paper tables under `results/`, metric snapshots, chrome traces — and
//! *parses* it in exactly two places: the CI bench-regression comparator
//! (committed baselines vs. fresh `BENCH_*.json`) and the trace
//! round-trip tests. Object fields keep insertion order, floats use
//! Rust's shortest round-trip formatting, and non-finite floats serialize
//! as `null` (matching `serde_json`'s default behaviour). The parser is
//! strict RFC 8259 minus the rarely-needed bits (`\uXXXX` surrogate
//! pairs are supported; leading `+`, comments, and trailing commas are
//! rejected).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Start an empty object (insertion-ordered).
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Add a field to an object (builder style). Panics on non-objects.
    pub fn field(mut self, key: impl Into<String>, value: impl ToJson) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.into(), value.to_json())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Parse a JSON document (must consume the whole input, modulo
    /// surrounding whitespace).
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: `Int`, `UInt`, and `Float` all read as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serialize to a compact string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Append the serialization of `self` to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let mut buf = itoa_buf();
                out.push_str(write_display(&mut buf, i));
            }
            Json::UInt(u) => {
                let mut buf = itoa_buf();
                out.push_str(write_display(&mut buf, u));
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let mut buf = itoa_buf();
                    let s = write_display(&mut buf, f);
                    out.push_str(s);
                    // `{}` prints integral floats without a dot; keep the
                    // value unambiguously a float on the wire.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn itoa_buf() -> String {
    String::with_capacity(24)
}

fn write_display<'a>(buf: &'a mut String, v: &impl fmt::Display) -> &'a str {
    use fmt::Write as _;
    buf.clear();
    let _ = write!(buf, "{v}");
    buf.as_str()
}

/// JSON string escaping per RFC 8259: `"`/`\`, the C0 controls, and the
/// common short escapes.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped runs wholesale.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi as u32)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            // Integral: prefer i64, fall back to u64, then f64.
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion into a [`Json`] value — the crate-local stand-in for
/// `serde::Serialize`.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
to_json_int!(i8, i16, i32, i64, isize);

macro_rules! to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
    )*};
}
to_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for u128 {
    fn to_json(&self) -> Json {
        // Counts can exceed u64 in theory; clamp rather than wrap.
        Json::UInt((*self).min(u64::MAX as u128) as u64)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(*self as f64)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::UInt(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::Float(1.5).render(), "1.5");
        assert_eq!(Json::Float(3.0).render(), "3.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn string_escaping_exact() {
        assert_eq!(Json::Str("hello".into()).render(), r#""hello""#);
        assert_eq!(
            Json::Str("a\"b\\c\nd\te".into()).render(),
            r#""a\"b\\c\nd\te""#
        );
        assert_eq!(Json::Str("\u{0001}".into()).render(), "\"\\u0001\"");
        assert_eq!(
            Json::Str("naïve — ünïcode".into()).render(),
            "\"naïve — ünïcode\""
        );
    }

    #[test]
    fn nested_structure_exact() {
        let v = Json::object()
            .field("name", "fig7")
            .field("krps", 302.4f64)
            .field("replicas", 3u64)
            .field("rows", vec![1u64, 2, 3])
            .field("missing", Option::<u64>::None);
        assert_eq!(
            v.render(),
            r#"{"name":"fig7","krps":302.4,"replicas":3,"rows":[1,2,3],"missing":null}"#
        );
    }

    #[test]
    fn float_shortest_roundtrip() {
        // Rust's `{}` float formatting is shortest-round-trip; parsing the
        // rendered text recovers the exact value.
        for x in [0.1f64, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let s = Json::Float(x).render();
            let back: f64 = s.parse().unwrap();
            assert_eq!(back, x, "{s}");
        }
    }

    #[test]
    fn display_matches_render() {
        let v = Json::Array(vec![Json::Int(1), Json::Str("x".into())]);
        assert_eq!(format!("{v}"), v.render());
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("3e2").unwrap(), Json::Float(300.0));
        assert_eq!(Json::parse("-1.25e-2").unwrap(), Json::Float(-0.0125));
    }

    #[test]
    fn parse_strings_and_escapes() {
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
        assert_eq!(
            Json::parse(r#""a\"b\\c\nd\teA""#).unwrap(),
            Json::Str("a\"b\\c\nd\teA".into())
        );
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1,]",
            "{\"a\":}",
            "01x",
            "tru",
            "\"unterminated",
            "[1] garbage",
            "nan",
            "+1",
            "--1",
            "1.",
            "1e",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_render_round_trip() {
        let v = Json::object()
            .field("name", "fig7 — «NEaT»")
            .field("krps", 302.4f64)
            .field("replicas", 3u64)
            .field("neg", -17i64)
            .field("rows", vec![1u64, 2, 3])
            .field("nested", Json::object().field("ok", true))
            .field("missing", Option::<u64>::None);
        // Small positive integers re-parse as `Int` where they may have
        // been written from a `UInt` — textually identical, so the
        // round-trip contract is on the rendered form.
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap().render(), text);
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("replicas").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            back.get("name").unwrap().as_str(),
            v.get("name").unwrap().as_str()
        );
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"metrics":{"krps":12.5,"n":3},"tags":["a","b"]}"#).unwrap();
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("krps").unwrap().as_f64(), Some(12.5));
        assert_eq!(m.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("tags").unwrap().as_array().unwrap()[0].as_str(),
            Some("a")
        );
        assert!(v.get("absent").is_none());
        assert_eq!(v.as_object().unwrap().len(), 2);
    }
}
