//! A quickcheck-style property-test harness.
//!
//! Replaces `proptest` for this workspace. The model:
//!
//! * a **generator** closure draws a random input from a seeded [`Rng`];
//! * a **property** closure returns `Ok(())` or `Err(reason)` (the
//!   [`prop_assert!`]/[`prop_assert_eq!`] macros produce the `Err`s, and
//!   panics inside the property are caught and treated as failures);
//! * on failure the harness **greedily shrinks** the input through
//!   [`Shrink`] candidates (integers halve toward zero, vectors lose
//!   chunks and elements, tuples shrink component-wise) and reports the
//!   minimal failing input together with the seed that reproduces it.
//!
//! Seeds are derived from the test name, so runs are deterministic by
//! default; `NEAT_CHECK_SEED` overrides the seed and `NEAT_CHECK_CASES`
//! the case count (e.g. for a long soak).
//!
//! Shrunk candidates can fall outside the generator's domain (a vector
//! generated with length `1..50` can shrink to empty). Properties should
//! early-return `Ok(())` for inputs they consider out of scope.

use crate::rng::Rng;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Property outcome: `Err` carries the failure reason.
pub type TestResult = Result<(), String>;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (default 256, like proptest).
    pub cases: u32,
    /// Explicit seed; `None` derives one from the test name.
    pub seed: Option<u64>,
    /// Cap on property evaluations spent shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            seed: None,
            max_shrink_steps: 4096,
        }
    }
}

impl Config {
    pub fn cases(mut self, cases: u32) -> Config {
        self.cases = cases;
        self
    }

    pub fn seed(mut self, seed: u64) -> Config {
        self.seed = Some(seed);
        self
    }
}

/// FNV-1a, used to derive a stable per-test default seed from its name.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run a property over `cfg.cases` random inputs; panic with a minimal
/// counterexample and reproduction instructions on failure.
pub fn check<T, G, P>(name: &str, cfg: Config, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut Rng) -> T,
    P: Fn(T) -> TestResult,
{
    let cases = std::env::var("NEAT_CHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases);
    let seed = std::env::var("NEAT_CHECK_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .or(cfg.seed)
        .unwrap_or_else(|| fnv1a(name));

    let run = |input: T| -> TestResult {
        match catch_unwind(AssertUnwindSafe(|| prop(input))) {
            Ok(r) => r,
            Err(payload) => Err(format!("property panicked: {}", panic_msg(&*payload))),
        }
    };

    let mut rng = Rng::seed_from_u64(seed);
    for case in 0..cases {
        let input = gen(&mut rng);
        if let Err(first_err) = run(input.clone()) {
            // Shrink quietly: candidate probes are *expected* to panic, so
            // silence the default hook while probing.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {}));
            let (min, err, steps) = shrink_loop(input, first_err, &run, cfg.max_shrink_steps);
            std::panic::set_hook(hook);
            panic!(
                "[{name}] property failed at case {case}/{cases} (seed {seed}, \
                 {steps} shrink steps)\n  minimal input: {min:?}\n  error: {err}\n  \
                 reproduce with: NEAT_CHECK_SEED={seed} cargo test {name}"
            );
        }
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// Greedy shrink: repeatedly move to the first failing shrink candidate
/// until no candidate fails or the step budget runs out.
fn shrink_loop<T, F>(mut cur: T, mut err: String, run: &F, max_steps: u32) -> (T, String, u32)
where
    T: Debug + Clone + Shrink,
    F: Fn(T) -> TestResult,
{
    let mut steps = 0u32;
    'outer: loop {
        for cand in cur.shrink() {
            if steps >= max_steps {
                break 'outer;
            }
            steps += 1;
            if let Err(e) = run(cand.clone()) {
                cur = cand;
                err = e;
                continue 'outer;
            }
        }
        break;
    }
    (cur, err, steps)
}

/// Produces *smaller* candidate values for counterexample minimization.
/// An empty candidate list means the value is already minimal.
pub trait Shrink: Sized {
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                if v / 2 != 0 {
                    out.push(v / 2);
                }
                if v - 1 != 0 && v - 1 != v / 2 {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}
shrink_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! shrink_int {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v == 0 {
                    return out;
                }
                out.push(0);
                let toward = v / 2; // truncates toward zero
                if toward != 0 {
                    out.push(toward);
                }
                let step = if v > 0 { v - 1 } else { v + 1 };
                if step != 0 && step != toward {
                    out.push(step);
                }
                out
            }
        }
    )*};
}
shrink_int!(i8, i16, i32, i64, i128, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<f64> {
        Vec::new()
    }
}

impl Shrink for char {
    fn shrink(&self) -> Vec<char> {
        Vec::new()
    }
}

impl<const N: usize> Shrink for [u8; N] {
    fn shrink(&self) -> Vec<[u8; N]> {
        Vec::new()
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Vec<T>> {
        let n = self.len();
        let mut out: Vec<Vec<T>> = Vec::new();
        if n == 0 {
            return out;
        }
        out.push(Vec::new());
        if n > 1 {
            out.push(self[..n / 2].to_vec());
            out.push(self[n / 2..].to_vec());
        }
        // Remove single elements at up to 8 evenly spaced positions.
        let stride = (n / 8).max(1);
        for i in (0..n).step_by(stride) {
            let mut v = self.clone();
            v.remove(i);
            out.push(v);
        }
        // Shrink individual elements in place (at up to 8 positions) —
        // this is what drives e.g. `vec![255]` down to `vec![0]`.
        for i in (0..n).step_by(stride) {
            for cand in self[i].shrink() {
                let mut v = self.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! shrink_tuple {
    ($(($($name:ident : $idx:tt),+);)+) => {$(
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<($($name,)+)> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )+};
}
shrink_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Assert inside a property body; produces an `Err` return, which the
/// harness shrinks and reports (mirrors `proptest::prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                format!($($fmt)*),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality assertion inside a property body (mirrors
/// `proptest::prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {}\n  left: {:?}\n right: {:?}\n  at {}:{}",
                format!($($fmt)*),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Convenience: generate a `Vec` with a length drawn from `len`, elements
/// drawn by `elem`.
pub fn vec_of<T>(
    rng: &mut Rng,
    len: core::ops::Range<usize>,
    mut elem: impl FnMut(&mut Rng) -> T,
) -> Vec<T> {
    let n = rng.gen_range(len);
    (0..n).map(|_| elem(rng)).collect()
}

/// Convenience: a `Vec<u8>` of length drawn from `len`.
pub fn bytes(rng: &mut Rng, len: core::ops::Range<usize>) -> Vec<u8> {
    let n = rng.gen_range(len);
    let mut v = vec![0u8; n];
    rng.fill_bytes(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counted = std::cell::Cell::new(0u32);
        check(
            "passing_property_runs_all_cases",
            Config::default().cases(64),
            |rng| rng.gen_range(0u64..1000),
            |x| {
                counted.set(counted.get() + 1);
                prop_assert!(x < 1000);
                Ok(())
            },
        );
        assert_eq!(counted.get(), 64);
    }

    #[test]
    fn shrinker_reaches_known_minimal_counterexample() {
        // Property: all values < 100. The minimal counterexample is
        // exactly 100, and greedy integer shrinking must land on it.
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "shrinker_minimal_int",
                Config::default().cases(256),
                |rng| rng.gen_range(0u64..10_000),
                |x| {
                    prop_assert!(x < 100, "x = {x}");
                    Ok(())
                },
            );
        }));
        let msg = panic_msg(&*result.expect_err("property must fail"));
        assert!(
            msg.contains("minimal input: 100"),
            "shrinker should reach exactly 100:\n{msg}"
        );
        assert!(
            msg.contains("NEAT_CHECK_SEED="),
            "reproduction seed reported"
        );
    }

    #[test]
    fn shrinker_minimizes_vectors() {
        // Property: no vector contains an element >= 50. Minimal failing
        // input is the single-element vector [50].
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "shrinker_minimal_vec",
                Config::default().cases(256),
                |rng| vec_of(rng, 1..40, |r| r.gen_range(0u32..1000)),
                |v| {
                    prop_assert!(v.iter().all(|&x| x < 50), "v = {v:?}");
                    Ok(())
                },
            );
        }));
        let msg = panic_msg(&*result.expect_err("property must fail"));
        assert!(
            msg.contains("minimal input: [50]"),
            "shrinker should reach [50]:\n{msg}"
        );
    }

    #[test]
    fn panics_are_treated_as_failures_and_shrunk() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "panic_is_failure",
                Config::default().cases(128),
                |rng| rng.gen_range(0u32..1000),
                |x| {
                    // An out-of-domain index panic, as real code would.
                    let v = [0u8; 200];
                    let _ = v[x as usize];
                    Ok(())
                },
            );
        }));
        let msg = panic_msg(&*result.expect_err("property must fail"));
        assert!(msg.contains("minimal input: 200"), "{msg}");
        assert!(msg.contains("property panicked"), "{msg}");
    }

    #[test]
    fn same_name_same_cases_is_deterministic() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            check(
                "determinism_probe",
                Config::default().cases(32),
                |rng| rng.gen::<u64>(),
                |x| {
                    seen.borrow_mut().push(x);
                    Ok(())
                },
            );
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn tuple_shrinking_is_componentwise() {
        let t = (4u32, true, vec![7u8]);
        let cands = t.shrink();
        assert!(cands.contains(&(0, true, vec![7])));
        assert!(cands.contains(&(4, false, vec![7])));
        assert!(cands.contains(&(4, true, vec![])));
    }
}
