//! Deterministic, fast hashing for hot-path maps.
//!
//! `std::collections::HashMap`'s default `RandomState` draws a fresh
//! SipHash key from OS entropy per process. That is the right default for
//! an internet-facing service, but here it is both *slow* (SipHash is
//! ~10x an integer mix on short keys) and *nondeterministic across runs*
//! (iteration order changes per process), which fights the workspace's
//! fixed-seed determinism contract. [`FxHasher`] is the rustc-style
//! multiply-xor hash: not keyed, brutally fast on small keys, and
//! identical on every run and platform.
//!
//! Adversarial flows could in principle craft collisions against an
//! unkeyed hash; the TCP demux table layers a keyed mix on top (see
//! `neat_tcp::demux`). These aliases are for *internal* id-keyed maps
//! (socket ids, process ids) where the keyspace is program-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// rustc's FxHash: one wrapping multiply + rotate + xor per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 8];
            last[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(last));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] — plug into `HashMap::with_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with deterministic, fast hashing. Iteration order is
/// stable for a fixed insertion/removal history (still arbitrary — do
/// not let it leak into outputs without sorting).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with deterministic, fast hashing.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"flow"), hash_of(&"flow"));
        // Pinned value: the hash must never drift between runs or hosts
        // (the determinism contract leans on this).
        let h = hash_of(&0xdead_beefu64);
        assert_eq!(h, hash_of(&0xdead_beefu64));
        assert_ne!(h, hash_of(&0xdead_beeecu64));
    }

    #[test]
    fn map_behaves() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 3);
        }
        for i in 0..1000 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn short_keys_spread() {
        // Consecutive small integers must not collapse into few buckets.
        let mut low_bits = FxHashSet::default();
        for i in 0u64..64 {
            low_bits.insert(hash_of(&i) >> 57); // top 7 bits
        }
        assert!(low_bits.len() > 16, "got {} distinct", low_bits.len());
    }
}
