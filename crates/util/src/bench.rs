//! Monotonic-timer micro-benchmark runner with a criterion-shaped API.
//!
//! Replaces `criterion` for `crates/bench/benches/micro.rs`: the familiar
//! `Criterion`/`benchmark_group`/`bench_function`/`Bencher::iter` surface,
//! `black_box`, `Throughput`, and the `criterion_group!`/`criterion_main!`
//! macros. Measurement is deliberately simple: warm up, size iteration
//! batches to a wall-clock budget, take the median over several batches,
//! report ns/iter (and bytes/s when a throughput is declared).
//!
//! `NEAT_BENCH_QUICK=1` shrinks budgets for smoke runs, which is what
//! `cargo test`-adjacent CI wants.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration work, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level runner handle (mirrors `criterion::Criterion`).
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    batches: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        if std::env::var("NEAT_BENCH_QUICK").is_ok() {
            Criterion {
                warmup: Duration::from_millis(20),
                measure: Duration::from_millis(60),
                batches: 3,
            }
        } else {
            Criterion {
                warmup: Duration::from_millis(150),
                measure: Duration::from_millis(500),
                batches: 7,
            }
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name.as_ref(), None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        run_one(self.criterion, &full, self.throughput, f);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher<'a> {
    criterion: &'a Criterion,
    /// Median ns/iter across batches, filled in by `iter`.
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.criterion.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;

        // Size batches so each takes measure/batches of wall clock.
        let batch_budget = self.criterion.measure.as_nanos() as f64 / self.criterion.batches as f64;
        let batch_iters = ((batch_budget / per_iter.max(1.0)) as u64).max(1);

        let mut samples: Vec<f64> = Vec::with_capacity(self.criterion.batches as usize);
        for _ in 0..self.criterion.batches {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = Some(samples[samples.len() / 2]);
    }
}

fn run_one<F>(criterion: &Criterion, name: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        criterion,
        result_ns: None,
    };
    f(&mut b);
    match b.result_ns {
        Some(ns) => {
            let thrpt = match throughput {
                Some(Throughput::Bytes(bytes)) => {
                    let gbs = bytes as f64 / ns; // bytes per ns == GB/s
                    format!("   thrpt: {:>9} ", fmt_rate(gbs * 1e9, "B/s"))
                }
                Some(Throughput::Elements(n)) => {
                    let eps = n as f64 / ns * 1e9;
                    format!("   thrpt: {:>9} ", fmt_rate(eps, "elem/s"))
                }
                None => String::new(),
            };
            println!("{name:<44} time: {:>12}{thrpt}", fmt_ns(ns));
        }
        None => println!("{name:<44} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::bench::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("NEAT_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        // Must not panic, and must drive the closure.
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn formatting_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns/iter");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs/iter");
        assert!(fmt_rate(5.2e9, "B/s").starts_with("5.20 G"));
        assert!(fmt_rate(7.0e4, "elem/s").starts_with("70.00 K"));
    }
}
