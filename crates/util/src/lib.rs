//! # neat-util — the zero-dependency foundation crate
//!
//! Everything in this workspace builds offline, from a clean checkout,
//! with no registry access. This crate owns the whole third-party surface
//! the repo used to import:
//!
//! * [`rng`] — a seedable xoshiro256\*\* PRNG (SplitMix64 seeding) with a
//!   `rand`-like surface and *stream splitting* for per-replica
//!   independence. Replaces `rand`.
//! * [`json`] — a small JSON value model and writer (serialize only).
//!   Replaces `serde`/`serde_json` for results emission.
//! * [`check`] — a quickcheck-style property-test harness: seeded case
//!   generation, failure-seed reporting, greedy shrinking. Replaces
//!   `proptest`.
//! * [`bench`] — a monotonic-timer micro-benchmark runner with a
//!   criterion-shaped API. Replaces `criterion`.
//! * [`hash`] — rustc-style FxHash plus deterministic `HashMap`/`HashSet`
//!   aliases for hot-path id-keyed maps. Replaces `rustc-hash`/`fxhash`.
//!
//! Determinism is a correctness feature here, not a convenience: the DES
//! reproduction of NEaT depends on bit-reproducible RNG streams for fault
//! injection and RSS steering, so `rng` guarantees that the same seed
//! always yields the same stream on every platform (no `HashMap` ordering,
//! no OS entropy, no time-of-day anywhere in this crate).

pub mod bench;
pub mod check;
pub mod hash;
pub mod json;
pub mod rng;

pub use check::{check, Config as CheckConfig, Shrink, TestResult};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::{Json, ToJson};
pub use rng::Rng;
