//! Deterministic, seedable PRNG: xoshiro256\*\* with SplitMix64 seeding.
//!
//! The surface intentionally mirrors the parts of `rand` the workspace
//! used (`seed_from_u64`, `gen`, `gen_range`, `gen_bool`, `fill_bytes`,
//! `shuffle`), plus [`Rng::split`] for deriving statistically independent
//! child streams — one per replica / component / injector — so that adding
//! a consumer never perturbs the draws seen by existing ones.
//!
//! Determinism contract: for a given seed, every method produces the same
//! results on every platform and every build. Nothing here reads the OS,
//! the clock, or address-space layout.

/// SplitMix64 step: the standard seeding/stream-derivation mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256\*\* — 256 bits of state, period 2^256 − 1, passes BigCrush.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the full 256-bit state from a 64-bit seed via SplitMix64
    /// (the construction recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent child stream. The child is seeded from fresh
    /// parent output passed through a distinct SplitMix64 stream, so
    /// parent and child (and siblings) never correlate. Drawing from the
    /// parent afterwards continues its own stream unaffected except for
    /// the one draw consumed here.
    pub fn split(&mut self) -> Rng {
        // Domain-separate the child derivation from plain reseeding.
        let mut sm = self.next_u64() ^ 0xA076_1D64_78BD_642F;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value of any [`FromRng`] type (mirrors `rand::Rng::gen`).
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform draw from a half-open or inclusive integer range
    /// (mirrors `rand::Rng::gen_range`). Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Fill a byte slice with uniform bytes.
    pub fn fill_bytes(&mut self, dst: &mut [u8]) {
        let mut chunks = dst.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniform draw in `[0, n)` — Lemire's multiply-shift with rejection,
    /// so the result is exactly uniform. Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types [`Rng::gen`] can produce uniformly.
pub trait FromRng {
    fn from_rng(rng: &mut Rng) -> Self;
}

macro_rules! from_rng_uint {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_uint!(u8, u16, u32, u64, usize);

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut Rng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(i8, i16, i32, i64, isize);

impl FromRng for u128 {
    #[inline]
    fn from_rng(rng: &mut Rng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut Rng) -> bool {
        // Use the high bit; xoshiro's low bits are the weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut Rng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    #[inline]
    fn from_rng(rng: &mut Rng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl<const N: usize> FromRng for [u8; N] {
    #[inline]
    fn from_rng(rng: &mut Rng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(rng.below(span + 1) as i64) as $t
            }
        }
    )*};
}
sample_range_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0xDEAD_BEEF);
        let mut b = Rng::seed_from_u64(0xDEAD_BEEF);
        let xs: Vec<u64> = (0..1000).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..1000).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_vector_is_stable() {
        // Pin the exact stream so a refactor can never silently change
        // every seeded experiment in the repo. Values captured from this
        // implementation (xoshiro256** seeded via SplitMix64 from 0).
        let mut r = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = Rng::seed_from_u64(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
        assert_eq!(got, REFERENCE_SEED0);
    }

    /// First four outputs for seed 0 — update only with a deliberate,
    /// documented break of the determinism contract.
    const REFERENCE_SEED0: [u64; 4] = [
        11091344671253066420,
        13793997310169335082,
        1900383378846508768,
        7684712102626143532,
    ];

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(42);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        // Children differ from each other and from the parent stream.
        let a: Vec<u64> = (0..100).map(|_| c1.next_u64()).collect();
        let b: Vec<u64> = (0..100).map(|_| c2.next_u64()).collect();
        let p: Vec<u64> = (0..100).map(|_| parent.next_u64()).collect();
        assert_ne!(a, b);
        assert_ne!(a, p);
        assert_ne!(b, p);
        // No element-wise collisions either (overwhelmingly unlikely for
        // independent 64-bit streams).
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
    }

    #[test]
    fn split_is_deterministic() {
        let mk = || {
            let mut p = Rng::seed_from_u64(7);
            let mut c = p.split();
            (0..10).map(|_| c.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1000 {
            let x = r.gen_range(5u64..6);
            assert_eq!(x, 5);
            let y = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&y));
        }
        // Full-width inclusive ranges don't overflow.
        let _: u64 = r.gen_range(0u64..=u64::MAX);
        let _: u8 = r.gen_range(0u8..=u8::MAX);
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Rng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 zero bytes after filling is a 2^-104 event.
        assert!(buf.iter().any(|&b| b != 0));
        let mut r2 = Rng::seed_from_u64(9);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let mut r = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements stayed put");
        let mut r2 = Rng::seed_from_u64(5);
        let mut v2: Vec<u32> = (0..50).collect();
        r2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
