//! Microbenchmarks for the hot paths of the reproduction: checksums,
//! header parse/emit, RSS hashing, TSO splitting, reassembly, the TCP
//! socket round trip, and raw DES event dispatch. Runs on the in-tree
//! `neat_util::bench` runner (criterion-shaped API, zero dependencies);
//! `NEAT_BENCH_QUICK=1` shortens measurement windows.

use neat_net::tcp::{TcpFlags, TcpHeader};
use neat_net::{
    checksum, EtherType, EthernetFrame, FlowKey, Ipv4Header, MacAddr, RssHasher, SeqNum,
};
use neat_tcp::assembler::Assembler;
use neat_tcp::{SocketId, TcpConfig, TcpSocket};
use neat_util::bench::{black_box, Criterion, Throughput};
use neat_util::{criterion_group, criterion_main};
use std::net::Ipv4Addr;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn bench_checksum(c: &mut Criterion) {
    let mut g = c.benchmark_group("checksum");
    for size in [64usize, 1460] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("internet_checksum_{size}B"), |b| {
            b.iter(|| checksum::checksum(black_box(&data)))
        });
    }
    g.finish();
}

fn bench_headers(c: &mut Criterion) {
    let payload = vec![7u8; 1400];
    c.bench_function("tcp_emit_1400B", |b| {
        b.iter(|| {
            let h = TcpHeader::new(1234, 80, SeqNum(1), SeqNum(2), TcpFlags::psh_ack());
            h.emit(black_box(&payload), A, B)
        })
    });
    let seg =
        TcpHeader::new(1234, 80, SeqNum(1), SeqNum(2), TcpFlags::psh_ack()).emit(&payload, A, B);
    c.bench_function("tcp_parse_1400B", |b| {
        b.iter(|| TcpHeader::parse(black_box(&seg), A, B).unwrap())
    });
    let ip = Ipv4Header::new(A, B, neat_net::ipv4::IpProtocol::Tcp, seg.len()).emit(&seg);
    c.bench_function("ipv4_parse", |b| {
        b.iter(|| Ipv4Header::parse(black_box(&ip)).unwrap())
    });
}

fn bench_rss(c: &mut Criterion) {
    let h = RssHasher::default();
    let flow = FlowKey::tcp(A, 40_000, B, 80);
    c.bench_function("rss_toeplitz_hash", |b| b.iter(|| h.hash(black_box(&flow))));
}

fn bench_tso(c: &mut Criterion) {
    let payload = vec![3u8; 32_000];
    let tcp = TcpHeader::new(1, 80, SeqNum(0), SeqNum(0), TcpFlags::psh_ack()).emit(&payload, A, B);
    let ip = Ipv4Header::new(A, B, neat_net::ipv4::IpProtocol::Tcp, tcp.len()).emit(&tcp);
    let frame = EthernetFrame {
        dst: MacAddr::local(1),
        src: MacAddr::local(2),
        ethertype: EtherType::Ipv4,
    }
    .emit(&ip);
    let mut g = c.benchmark_group("tso");
    g.throughput(Throughput::Bytes(32_000));
    g.bench_function("split_32KB_to_mss", |b| {
        b.iter(|| neat_nic::tso::tso_split(black_box(frame.clone()), 1460))
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    c.bench_function("assembler_out_of_order_16", |b| {
        b.iter(|| {
            let mut asm = Assembler::new(64 * 1024);
            let base = SeqNum(1000);
            for i in (0..16).rev() {
                asm.insert(base + i * 1000, black_box(&[9u8; 1000]), base);
            }
            let mut rcv = base;
            while let Some(run) = asm.take_contiguous(rcv) {
                rcv += run.len() as u32;
            }
            rcv
        })
    });
}

fn bench_tcp_roundtrip(c: &mut Criterion) {
    // One full request/response over established sockets, including real
    // emit/parse — the simulator's inner loop.
    c.bench_function("tcp_socket_request_response", |b| {
        let cfg = TcpConfig::default();
        let mut cl = TcpSocket::connect(SocketId(1), &cfg, (A, 40_000), (B, 80), SeqNum(1), 0);
        let (syn, _) = cl.poll_transmit(0).unwrap();
        let mut sv =
            TcpSocket::accept_from_syn(SocketId(2), &cfg, (B, 80), (A, 40_000), &syn, SeqNum(9), 0);
        let pump = |a: &mut TcpSocket, bq: &mut TcpSocket, now: u64| loop {
            let mut moved = false;
            while let Some((h, p)) = a.poll_transmit(now) {
                let bytes = h.emit(&p, a.local_ip, bq.local_ip);
                let (g, r) = TcpHeader::parse(&bytes, a.local_ip, bq.local_ip).unwrap();
                bq.on_segment(&g, &bytes[r], now);
                moved = true;
            }
            while let Some((h, p)) = bq.poll_transmit(now) {
                let bytes = h.emit(&p, bq.local_ip, a.local_ip);
                let (g, r) = TcpHeader::parse(&bytes, bq.local_ip, a.local_ip).unwrap();
                a.on_segment(&g, &bytes[r], now);
                moved = true;
            }
            if !moved {
                break;
            }
        };
        pump(&mut cl, &mut sv, 0);
        let mut now = 1u64;
        b.iter(|| {
            now += 1000;
            cl.send(b"GET /file HTTP/1.1\r\n\r\n").unwrap();
            pump(&mut cl, &mut sv, now);
            let mut buf = [0u8; 256];
            while let Ok(n) = sv.recv(&mut buf) {
                if n == 0 {
                    break;
                }
            }
            sv.send(b"HTTP/1.1 200 OK\r\nContent-Length: 20\r\n\r\nxxxxxxxxxxxxxxxxxxxx")
                .unwrap();
            pump(&mut cl, &mut sv, now);
            while let Ok(n) = cl.recv(&mut buf) {
                if n == 0 {
                    break;
                }
            }
        })
    });
}

fn bench_sim_dispatch(c: &mut Criterion) {
    use neat_sim::{Ctx, Event, MachineSpec, Process, Sim, SimConfig, Time};
    enum M {
        Ping,
    }
    struct Echo;
    impl Process<M> for Echo {
        fn name(&self) -> String {
            "echo".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, M>, ev: Event<M>) {
            if let Event::Message { .. } = ev {
                ctx.charge(1000);
                ctx.send(ctx.self_id, M::Ping);
            }
        }
    }
    c.bench_function("des_dispatch_10k_events", |b| {
        b.iter(|| {
            let mut sim: Sim<M> = Sim::new(SimConfig::default());
            let m = sim.add_machine(MachineSpec::amd_opteron_6168());
            let t = sim.hw_thread(m, 0, 0);
            let p = sim.spawn(t, Box::new(Echo));
            sim.send_external(p, M::Ping);
            // 1000 cycles/event at 1.9GHz ≈ 526ns; 10k events ≈ 5.3ms.
            sim.run_until(Time::from_millis(6));
            sim.events_dispatched()
        })
    });
}

criterion_group!(
    benches,
    bench_checksum,
    bench_headers,
    bench_rss,
    bench_tso,
    bench_assembler,
    bench_tcp_roundtrip,
    bench_sim_dispatch
);
criterion_main!(benches);
