//! # neat-bench — the experiment harness
//!
//! One binary per table and figure of the paper's evaluation (§6). Every
//! binary regenerates its table/figure from a fresh simulation: workload
//! generation, parameter sweep, baseline, and paper-shaped output rows,
//! plus a machine-readable copy under `results/`.
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Linux request-rate breakdown per tuning option |
//! | `fig4_5` | Linux latency/requests and throughput/request-rate vs file size |
//! | `fig7`   | AMD: request rate vs lighttpd instances (NEaT/Multi) |
//! | `fig9`   | Xeon: multi-component scaling (± HT) |
//! | `fig11`  | Xeon: single-component scaling (± HT) |
//! | `fig12`  | AMD: configurations under 1-request/connection load |
//! | `table2` | NIC driver CPU usage breakdown under rising load |
//! | `table3` | fault-injection campaign (transparent vs state-losing) |
//! | `failover` | buddy-replica crash failover + live flow migration |
//! | `fig13`  | expected state preserved vs max throughput |
//! | `run_all`| everything above, writing `results/*.txt` + summary |

use neat_util::{Json, ToJson};
use std::fmt::Write as _;
use std::io::Write as _;

/// A simple aligned-text table that mirrors the paper's presentation.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n## {}\n", self.title);
        let line = |cells: &[String], w: &[usize]| {
            let mut s = String::from("| ");
            for (c, width) in cells.iter().zip(w) {
                let _ = write!(s, "{c:>width$} | ");
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", line(&sep, &widths));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r, &widths));
        }
        out
    }

    /// Machine-readable form: title, header, and rows-as-objects keyed by
    /// the header columns.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                let mut obj = Json::object();
                for (k, v) in self.header.iter().zip(r) {
                    obj = obj.field(k.clone(), v.as_str());
                }
                obj
            })
            .collect();
        Json::object()
            .field("title", self.title.as_str())
            .field("columns", self.header.to_json())
            .field("rows", Json::Array(rows))
    }

    /// Print to stdout and write `results/<name>.txt` (append, paper-shaped
    /// text) plus `results/BENCH_<name>.json` (overwrite, machine-readable).
    pub fn emit(&self, name: &str) {
        let text = self.render();
        println!("{text}");
        let _ = std::fs::create_dir_all("results");
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(format!("results/{name}.txt"))
        {
            let _ = f.write_all(text.as_bytes());
        }
        let _ = std::fs::write(
            format!("results/BENCH_{name}.json"),
            self.to_json().render(),
        );
    }
}

/// Accumulates everything one experiment binary produces — paper-shaped
/// tables plus named headline metrics — and writes a single unified
/// `results/BENCH_<name>.json` with the observability snapshot attached.
///
/// The headline metrics are the values the CI regression gate compares
/// against `baselines/bench_baselines.json`, so every binary should
/// register at least one via [`BenchReport::metric`].
pub struct BenchReport {
    name: String,
    tables: Vec<Json>,
    metrics: Vec<(String, f64)>,
}

impl BenchReport {
    pub fn new(name: impl Into<String>) -> BenchReport {
        BenchReport {
            name: name.into(),
            tables: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Print a table, append it to `results/<name>.txt`, and include it in
    /// the unified JSON written by [`BenchReport::finish`].
    pub fn table(&mut self, t: &Table) {
        let text = t.render();
        println!("{text}");
        let _ = std::fs::create_dir_all("results");
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(format!("results/{}.txt", self.name))
        {
            let _ = f.write_all(text.as_bytes());
        }
        self.tables.push(t.to_json());
    }

    /// Register a headline metric (gated by CI against the committed
    /// baselines). Keys should be stable, e.g. `"neat3_krps"`.
    pub fn metric(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.push((key.into(), value));
    }

    /// Write `results/BENCH_<name>.json`: headline metrics, all tables,
    /// and the current metrics-registry snapshot.
    pub fn finish(self) {
        let mut metrics = Json::object();
        for (k, v) in &self.metrics {
            metrics = metrics.field(k.clone(), *v);
        }
        let json = Json::object()
            .field("bench", self.name.as_str())
            .field("quick", quick())
            .field("metrics", metrics)
            .field("tables", Json::Array(self.tables))
            .field("obs", neat_obs::snapshot());
        let _ = std::fs::create_dir_all("results");
        let _ = std::fs::write(format!("results/BENCH_{}.json", self.name), json.render());
    }
}

/// Format a krps value the way the paper quotes them.
pub fn krps(v: f64) -> String {
    format!("{v:.1}")
}

pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// True when running in quick/smoke mode (`NEAT_BENCH_QUICK` set): shorter
/// windows and reduced sweeps, deterministic with fixed seeds — the mode
/// the CI regression gate runs and baselines are recorded in.
pub fn quick() -> bool {
    std::env::var("NEAT_BENCH_QUICK").is_ok()
}

/// Shared measurement windows: long enough for steady state, short enough
/// to keep the full suite tractable. Honours `NEAT_BENCH_QUICK` for smoke
/// runs.
pub fn windows() -> (neat_sim::Time, neat_sim::Time) {
    if quick() {
        (
            neat_sim::Time::from_millis(100),
            neat_sim::Time::from_millis(150),
        )
    } else {
        (
            neat_sim::Time::from_millis(200),
            neat_sim::Time::from_millis(400),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["config", "krps"]);
        t.row(&["NEaT 3x".into(), "301.1".into()]);
        t.row(&["Linux".into(), "230.4".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("NEaT 3x"));
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        assert_eq!(lines.len(), 4);
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "aligned columns");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(krps(301.06), "301.1");
        assert_eq!(pct(0.348), "34.8%");
    }
}
