//! **Table 2** — "10G driver CPU usage breakdown on Xeon", serving 3
//! replicas under a range of loads:
//!
//! | CPU load | Active in kernel | Polling | Web krps |
//! |   6%     |      33.3%       |  51.8%  |    3     |
//! |  60%     |      14.2%       |  27.9%  |   45     |
//! |  88%     |       5.4%       |  19.7%  |   90     |
//! |  97%     |       0.1%       |   7.4%  |  242     |
//!
//! The mechanism: "a mostly idle driver spends a significant portion of
//! the active time suspending/resuming in the kernel … polling the 3
//! stacks and the NIC queues. The 'wasted' time shrinks with increasing
//! load."

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_bench::{windows, BenchReport, Table};

fn main() {
    // Drive the 3-replica Xeon stack at rising offered loads:
    // (clients, conns/client, think time us) — targeting the paper's
    // 3 / 45 / 90 / peak krps operating points.
    let loads: &[(usize, usize, u64)] = &[(1, 1, 300), (2, 4, 100), (4, 8, 50), (12, 24, 0)];
    let mut t = Table::new(
        "Table 2 — 10G driver CPU usage breakdown on Xeon (3 replicas)",
        &["CPU load", "Active in kernel", "Polling", "Web krps"],
    );
    let mut report = BenchReport::new("table2");
    for (clients, conns, think_us) in loads {
        let mut spec = TestbedSpec::xeon(NeatConfig::single(3), 6);
        spec.clients = *clients;
        spec.workload = Workload {
            conns_per_client: *conns,
            requests_per_conn: 100,
            think_ns: think_us * 1_000,
            ..Workload::default()
        };
        let (warm, win) = windows();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(warm, win);
        let st = tb.sim.thread_stats(tb.driver_thread);
        if *think_us == 0 {
            report.metric("peak_krps", r.krps);
            report.metric("drv_load_peak_pct", st.load(r.duration) * 100.0);
        }
        t.row(&[
            format!("{:.0}%", st.load(r.duration) * 100.0),
            format!("{:.1}%", st.kernel_share() * 100.0),
            format!("{:.1}%", st.poll_share() * 100.0),
            format!("{:.0}", r.krps),
        ]);
    }
    report.table(&t);
    report.finish();
    println!(
        "Paper trend: as load rises, kernel (suspend/resume) and polling\n\
         shares of the driver's active time fall toward zero — the driver\n\
         trades 'wasted' time for useful processing."
    );
}
