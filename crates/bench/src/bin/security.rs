//! **§3.8 security experiment** (not a numbered figure in the paper, which
//! states the property qualitatively): measure the address-space
//! re-randomization that replication provides for free.
//!
//! Every replica (re)starts with a fresh ASLR layout; every new connection
//! is bound to a random replica (library side) or hashed to one (NIC
//! side). An attacker probing the server over consecutive connections
//! therefore faces an unpredictable memory layout. We measure, on live
//! testbeds: the layout entropy of the assignment stream, the probability
//! two consecutive connections share a layout, and the growth of distinct
//! layouts when crashes re-randomize replicas.

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat::security::AslrObserver;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_bench::{BenchReport, Table};
use neat_sim::Time;

fn observe(replicas: usize, crash_one: bool) -> (AslrObserver, usize) {
    let mut spec = TestbedSpec::amd(NeatConfig::single(replicas), 3);
    spec.clients = 6;
    spec.workload = Workload {
        conns_per_client: 4,
        requests_per_conn: 5, // high connection churn = many assignments
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    tb.sim.run_until(Time::from_millis(300));
    if crash_one {
        let pid = tb.deployment.comp_pids[0][0].1;
        tb.sim.send_external(pid, Msg::Poison);
    }
    tb.sim.run_until(tb.sim.now() + Time::from_millis(300));
    let mut obs = AslrObserver::new();
    for m in &tb.web_metrics {
        for pid in &m.borrow().served_by {
            obs.record(*pid);
        }
    }
    let n = obs.len();
    (obs, n)
}

fn main() {
    let mut t = Table::new(
        "§3.8 — layout unpredictability across consecutive connections",
        &[
            "config",
            "connections",
            "distinct layouts",
            "entropy (bits)",
            "P(same layout twice)",
        ],
    );
    let mut report = BenchReport::new("security");
    for (label, replicas, crash) in [
        ("NEaT 1x", 1usize, false),
        ("NEaT 2x", 2, false),
        ("NEaT 3x", 3, false),
        ("NEaT 3x + crash", 3, true),
    ] {
        let (obs, n) = observe(replicas, crash);
        if label == "NEaT 3x" {
            report.metric("neat3_entropy_bits", obs.entropy_bits().max(0.0));
        }
        t.row(&[
            label.into(),
            n.to_string(),
            obs.distinct_layouts().to_string(),
            format!("{:.2}", obs.entropy_bits().max(0.0)),
            format!("{:.2}", obs.consecutive_same_fraction()),
        ]);
    }
    report.table(&t);
    report.finish();
    println!(
        "A monolithic stack is one process: zero bits of layout entropy and\n\
         P(same)=1. With N replicas the attacker faces ~log2(N) bits per\n\
         connection, and each crash-recovery *adds* a fresh layout —\n\
         re-randomization as a by-product of stateless recovery (§3.8)."
    );
}
