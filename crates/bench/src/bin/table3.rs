//! **Table 3** — fault-injection experiment (§6.6): inject faults into
//! randomly selected parts of the (multi-component) stack's code — the
//! probability a component is hit is proportional to its code size — and
//! classify each failing run:
//!
//! * "Fully transparent recovery" (paper: 53.8%) — applications and users
//!   notice nothing; effect no worse than a packet delay or loss;
//! * "TCP connections lost" (paper: 46.2%) — the fault hit the TCP
//!   component, whose per-connection state is irrecoverable under
//!   stateless recovery.
//!
//! Our component code sizes are measured from this repository's sources,
//! so the exact split differs from the paper's lwIP-era stack (our TCP is
//! a larger fraction); the *mechanism* — only TCP faults lose state, all
//! components recover, other replicas unaffected — is what this
//! experiment verifies, 100 failing runs at a time.

use neat::config::NeatConfig;
use neat::fault::{pick_target, CodeSizes};
use neat::msg::Msg;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_bench::{quick, BenchReport, Table};
use neat_sim::Time;
use neat_util::Rng;

struct Outcome {
    transparent: bool,
    target: neat::supervisor::Role,
}

fn one_run(seed: u64, sizes: &CodeSizes) -> Outcome {
    let mut spec = TestbedSpec::amd(NeatConfig::multi(2), 4);
    spec.seed = seed;
    spec.clients = 4;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 1_000, // long-lived connections, like the paper
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    tb.sim.run_until(Time::from_millis(150));

    let mut rng = Rng::seed_from_u64(seed ^ 0xFA_417);
    let target = pick_target(sizes, &mut rng);
    let replica = rng.gen_range(0usize..2);
    let pid = match target {
        neat::supervisor::Role::Driver => tb.deployment.driver,
        role => tb.deployment.comp_pids[replica]
            .iter()
            .find(|(r, _)| *r == role)
            .map(|(_, p)| *p)
            .expect("component"),
    };
    tb.sim.send_external(pid, Msg::Poison);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(300));

    // Classify: did any application-visible connection state vanish?
    let lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    let client_errors = tb.total_errors();
    Outcome {
        transparent: lost == 0 && client_errors == 0,
        target,
    }
}

fn main() {
    let runs: usize = std::env::var("NEAT_TABLE3_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick() { 10 } else { 100 });
    let sizes = CodeSizes::measured();
    println!(
        "component code sizes (lines): tcp={} ip={} udp={} pf={} driver={} (tcp fraction {:.1}%)",
        sizes.tcp,
        sizes.ip,
        sizes.udp,
        sizes.pf,
        sizes.driver,
        sizes.tcp_fraction() * 100.0
    );
    let mut transparent = 0usize;
    let mut by_target: std::collections::HashMap<String, (usize, usize)> = Default::default();
    for i in 0..runs {
        let o = one_run(0x7AB1E3 + i as u64, &sizes);
        let e = by_target.entry(format!("{:?}", o.target)).or_default();
        e.0 += 1;
        if o.transparent {
            transparent += 1;
            e.1 += 1;
        }
    }
    let lost = runs - transparent;
    let mut t = Table::new(
        format!("Table 3 — fault injection, {runs} failing runs (multi-component)"),
        &["outcome", "paper", "measured"],
    );
    t.row(&[
        "Fully transparent recovery".into(),
        "53.8%".into(),
        format!("{:.1}%", transparent as f64 / runs as f64 * 100.0),
    ]);
    t.row(&[
        "TCP connections lost".into(),
        "46.2%".into(),
        format!("{:.1}%", lost as f64 / runs as f64 * 100.0),
    ]);
    let mut report = BenchReport::new("table3");
    report.metric("transparent_pct", transparent as f64 / runs as f64 * 100.0);
    report.table(&t);

    let mut t2 = Table::new(
        "Table 3 detail — injections and transparent recoveries per component",
        &["component", "injections", "transparent"],
    );
    let mut keys: Vec<_> = by_target.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let (inj, transp) = by_target[&k];
        t2.row(&[k, inj.to_string(), transp.to_string()]);
    }
    report.table(&t2);
    report.finish();
    println!(
        "Expected split tracks the measured TCP code fraction ({:.1}%);\n\
         the paper's stack measured 46.2%. In all runs the server was\n\
         reachable again after recovery.",
        sizes.tcp_fraction() * 100.0
    );
}
