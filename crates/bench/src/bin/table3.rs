//! **Table 3** — fault-injection experiment (§6.6): inject faults into
//! randomly selected parts of the (multi-component) stack's code — the
//! probability a component is hit is proportional to its code size — and
//! classify each failing run:
//!
//! * "Fully transparent recovery" (paper: 53.8%) — applications and users
//!   notice nothing; effect no worse than a packet delay or loss;
//! * "TCP connections lost" (paper: 46.2%) — the fault hit the TCP
//!   component, whose per-connection state is irrecoverable under
//!   stateless recovery.
//!
//! Our component code sizes are measured from this repository's sources,
//! so the exact split differs from the paper's lwIP-era stack (our TCP is
//! a larger fraction); the *mechanism* — only TCP faults lose state, all
//! components recover, other replicas unaffected — is what this
//! experiment verifies, 100 failing runs at a time.
//!
//! The experiment runs twice: once with plain stateless recovery (the
//! paper's configuration) and once with buddy-replica flow replication
//! enabled, where a TCP crash hands the dead replica's flows to the
//! respawned head and transparency should approach 100%. The replicated
//! arm's rate is the CI-gated `transparent_pct` headline.

use neat::config::NeatConfig;
use neat::fault::{pick_target, CodeSizes};
use neat::msg::Msg;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_bench::{quick, BenchReport, Table};
use neat_sim::Time;
use neat_util::Rng;

struct Outcome {
    transparent: bool,
    target: neat::supervisor::Role,
}

fn one_run(seed: u64, sizes: &CodeSizes, replicated: bool) -> Outcome {
    let cfg = if replicated {
        NeatConfig::multi(2).replicated()
    } else {
        NeatConfig::multi(2)
    };
    let mut spec = TestbedSpec::amd(cfg, 4);
    spec.seed = seed;
    spec.clients = 4;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 1_000, // long-lived connections, like the paper
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    tb.sim.run_until(Time::from_millis(150));

    let mut rng = Rng::seed_from_u64(seed ^ 0xFA_417);
    let target = pick_target(sizes, &mut rng);
    let replica = rng.gen_range(0usize..2);
    let pid = match target {
        neat::supervisor::Role::Driver => tb.deployment.driver,
        role => tb.deployment.comp_pids[replica]
            .iter()
            .find(|(r, _)| *r == role)
            .map(|(_, p)| *p)
            .expect("component"),
    };
    // Attribute losses and client errors to the crash window only:
    // anything accumulated while the stack was healthy (e.g. warmup
    // connection churn) is not this fault's doing.
    let pre_lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    let pre_errors = tb.total_errors();
    tb.sim.send_external(pid, Msg::Poison);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(300));

    // Classify: did any application-visible connection state vanish?
    let lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum::<u64>()
        .saturating_sub(pre_lost);
    let client_errors = tb.total_errors().saturating_sub(pre_errors);
    Outcome {
        transparent: lost == 0 && client_errors == 0,
        target,
    }
}

/// One full injection campaign; returns (transparent count, per-component
/// (injections, transparent) map).
fn campaign(
    runs: usize,
    sizes: &CodeSizes,
    replicated: bool,
) -> (usize, std::collections::HashMap<String, (usize, usize)>) {
    let mut transparent = 0usize;
    let mut by_target: std::collections::HashMap<String, (usize, usize)> = Default::default();
    for i in 0..runs {
        let o = one_run(0x7AB1E3 + i as u64, sizes, replicated);
        let e = by_target.entry(format!("{:?}", o.target)).or_default();
        e.0 += 1;
        if o.transparent {
            transparent += 1;
            e.1 += 1;
        }
    }
    (transparent, by_target)
}

fn main() {
    let runs: usize = std::env::var("NEAT_TABLE3_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick() { 10 } else { 100 });
    let sizes = CodeSizes::measured();
    println!(
        "component code sizes (lines): tcp={} ip={} udp={} pf={} driver={} (tcp fraction {:.1}%)",
        sizes.tcp,
        sizes.ip,
        sizes.udp,
        sizes.pf,
        sizes.driver,
        sizes.tcp_fraction() * 100.0
    );
    let (base_transparent, by_target) = campaign(runs, &sizes, false);
    let (repl_transparent, repl_by_target) = campaign(runs, &sizes, true);
    let pct = |n: usize| n as f64 / runs as f64 * 100.0;
    let mut t = Table::new(
        format!("Table 3 — fault injection, {runs} failing runs (multi-component)"),
        &["outcome", "paper", "stateless", "replicated"],
    );
    t.row(&[
        "Fully transparent recovery".into(),
        "53.8%".into(),
        format!("{:.1}%", pct(base_transparent)),
        format!("{:.1}%", pct(repl_transparent)),
    ]);
    t.row(&[
        "TCP connections lost".into(),
        "46.2%".into(),
        format!("{:.1}%", pct(runs - base_transparent)),
        format!("{:.1}%", pct(runs - repl_transparent)),
    ]);
    let mut report = BenchReport::new("table3");
    // Headline (CI-gated): transparency with buddy replication on.
    report.metric("transparent_pct", pct(repl_transparent));
    report.metric("transparent_stateless_pct", pct(base_transparent));
    report.table(&t);

    let mut t2 = Table::new(
        "Table 3 detail — injections and transparent recoveries per component",
        &["component", "injections", "stateless", "replicated"],
    );
    let mut keys: Vec<_> = by_target.keys().cloned().collect();
    keys.sort();
    for k in keys {
        let (inj, transp) = by_target[&k];
        let repl_transp = repl_by_target.get(&k).map(|e| e.1).unwrap_or(0);
        t2.row(&[
            k,
            inj.to_string(),
            transp.to_string(),
            repl_transp.to_string(),
        ]);
    }
    report.table(&t2);
    report.finish();
    println!(
        "Expected stateless split tracks the measured TCP code fraction\n\
         ({:.1}%); the paper's stack measured 46.2%. With buddy-replica\n\
         flow replication the respawned TCP component adopts the dead\n\
         replica's flows, so TCP crashes become transparent too. In all\n\
         runs the server was reachable again after recovery.",
        sizes.tcp_fraction() * 100.0
    );
}
