//! **Table 1** — "Request rate breakdown per option tuned, with 12
//! concurrent httperf instances, each opening 1000 connections, with 1000
//! requests for a 20 byte file per connection."
//!
//! Paper (AMD, 12 cores): defaults 184.118 | +sched+eth+irqAff+rxAff
//! 186.667 | +serv 223.987 krps.

use neat_apps::scenario::{MonoTestbed, MonoTestbedSpec, Workload};
use neat_bench::{krps, windows, BenchReport, Table};
use neat_monolith::MonoTuning;

fn run_row(tuning: MonoTuning) -> f64 {
    let mut spec = MonoTestbedSpec::amd(tuning);
    spec.workload = Workload {
        conns_per_client: 48,
        requests_per_conn: 1000,
        ..Workload::default()
    };
    let (warm, win) = windows();
    let mut tb = MonoTestbed::build(spec);
    tb.measure(warm, win).krps
}

fn main() {
    let mut report = BenchReport::new("table1");
    let mut t = Table::new(
        "Table 1 — Linux request rate per tuning option (AMD, 12 cores)",
        &["Option Tuned", "paper krps", "measured krps"],
    );
    for (key, tuning, paper) in [
        ("defaults_krps", MonoTuning::defaults(), 184.118),
        ("affinities_krps", MonoTuning::affinities(), 186.667),
        ("best_krps", MonoTuning::best(), 223.987),
    ] {
        let name = tuning.name.clone();
        let measured = run_row(tuning);
        report.metric(key, measured);
        t.row(&[name, format!("{paper:.3}"), krps(measured)]);
    }
    report.table(&t);
    report.finish();
}
