//! **Figure 7** — "AMD - Scaling lighttpd and the network stack": request
//! rate vs number of lighttpd instances for Multi 1x/2x and NEaT 2x/3x on
//! the 12-core Opteron, plus the best-Linux reference (224 krps; NEaT 3x
//! reached 302 krps = +34.8%).
//!
//! Pass `--layouts` to print the Figure 6 core-assignment diagrams.

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_bench::{krps, windows, BenchReport, Table};

fn measure(cfg: NeatConfig, webs: usize) -> f64 {
    let mut spec = TestbedSpec::amd(cfg, webs);
    spec.workload = Workload {
        conns_per_client: 16,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let (warm, win) = windows();
    let mut tb = Testbed::build(spec);
    tb.measure(warm, win).krps
}

fn print_layouts() {
    println!(
        r#"
Figure 6(a) — Multi 2x best configuration (12 cores):
  | OS | SYSCALL | NIC Drv | TCP 1 | IP 1 | TCP 2 | IP 2 | Web 1..5 |
Figure 6(b) — NEaT 3x best configuration (12 cores):
  | OS | SYSCALL | NIC Drv | NEaT 1 | NEaT 2 | NEaT 3 | Web 1..6 |
(PF and UDP components of each Multi replica share the IP core.)
"#
    );
}

fn main() {
    if std::env::args().any(|a| a == "--layouts") {
        print_layouts();
    }
    let mut t = Table::new(
        "Figure 7 — AMD: request rate (krps) vs # lighttpd instances",
        &["config", "1", "2", "3", "4", "5", "6"],
    );
    let curves: &[(&str, NeatConfig, usize)] = &[
        ("Multi 1x", NeatConfig::multi(1), 6),
        ("Multi 2x", NeatConfig::multi(2), 5), // only 5 cores remain
        ("NEaT 2x", NeatConfig::single(2), 6),
        ("NEaT 3x", NeatConfig::single(3), 6),
    ];
    let mut report = BenchReport::new("fig7");
    for (name, cfg, max_webs) in curves {
        let mut cells = vec![name.to_string()];
        for webs in 1..=6usize {
            if webs > *max_webs {
                cells.push("-".into());
            } else {
                let v = measure(cfg.clone(), webs);
                if webs == *max_webs {
                    match *name {
                        "NEaT 3x" => report.metric("neat3_webs6_krps", v),
                        "Multi 2x" => report.metric("multi2_webs5_krps", v),
                        _ => {}
                    }
                }
                cells.push(krps(v));
            }
        }
        t.row(&cells);
    }
    report.table(&t);
    report.finish();
    println!(
        "Paper shape: Multi 1x linear to 4 instances then saturated; NEaT 3x\n\
         scales to 6 instances (302 krps vs Linux 224 = +34.8%)."
    );
}
