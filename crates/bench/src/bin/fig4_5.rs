//! **Figures 4 & 5** — Linux (optimal configuration), file-size sweep:
//!
//! * Fig. 4: latency and total number of requests vs requested file size;
//!   "as soon as we switch to moderately large files (between 100K - 1M),
//!   the latency dramatically increases, the number of requests drops".
//! * Fig. 5: throughput and request rate vs file size; "as soon as the
//!   file size exceeds 7KB, the 10Gb/s bandwidth becomes the bottleneck".

use neat_apps::scenario::{MonoTestbed, MonoTestbedSpec, Workload};
use neat_apps::FileStore;
use neat_bench::{quick, windows, BenchReport, Table};
use neat_monolith::MonoTuning;
#[allow(unused_imports)]
use neat_sim::Time;

fn main() {
    let all_sizes: &[usize] = &[
        1, 10, 100, 1_000, 7_000, 10_000, 100_000, 1_000_000, 10_000_000,
    ];
    // The >=1MB rows need multi-second windows to complete whole
    // responses; the smoke run stops at 100K to stay CI-sized.
    let sizes: &[usize] = if quick() { &all_sizes[..7] } else { all_sizes };
    let mut report = BenchReport::new("fig4_5");
    let mut t = Table::new(
        "Figures 4-5 — Linux optimal config: latency, requests, throughput vs file size",
        &[
            "file size",
            "krps",
            "MB/s",
            "mean lat",
            "p99 lat",
            "conn errors",
        ],
    );
    for &sz in sizes {
        let mut spec = MonoTestbedSpec::amd(MonoTuning::best());
        spec.files = FileStore::size_sweep(all_sizes);
        // Large transfers need fewer, longer-lived connections and a
        // window long enough to complete whole responses (the paper ran
        // 1000 requests per connection over minutes).
        let conns = if sz >= 1_000_000 {
            2
        } else if sz >= 100_000 {
            8
        } else {
            24
        };
        let (mut warm, mut win) = windows();
        if sz >= 1_000_000 {
            warm = neat_sim::Time::from_millis(500);
            win = neat_sim::Time::from_secs(3);
        }
        spec.workload = Workload {
            conns_per_client: conns,
            requests_per_conn: 100,
            path: format!("/file{sz}"),
            timeout_ns: 30_000_000_000,
            think_ns: 0,
        };
        let mut tb = MonoTestbed::build(spec);
        let r = tb.measure(warm, win);
        match sz {
            100 => report.metric("krps_100b", r.krps),
            10_000 => report.metric("mbps_10k", r.mbps),
            100_000 => report.metric("mbps_100k", r.mbps),
            _ => {}
        }
        t.row(&[
            human_size(sz),
            format!("{:.1}", r.krps),
            format!("{:.1}", r.mbps),
            format!("{}", r.mean_latency),
            format!("{}", r.p99_latency),
            format!("{}", r.conn_errors),
        ]);
    }
    report.table(&t);
    report.finish();
    println!(
        "Expected shape: flat krps for tiny files; link saturates (~1050 MB/s payload)\n\
         past ~7KB; latency grows sharply with file size (paper Figure 4-5)."
    );
}

fn human_size(sz: usize) -> String {
    match sz {
        s if s >= 1_000_000 => format!("{}M", s / 1_000_000),
        s if s >= 1_000 => format!("{}K", s / 1_000),
        s => format!("{s}B"),
    }
}
