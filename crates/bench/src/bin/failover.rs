//! failover — buddy-replica failover and live flow migration headlines.
//!
//! Two fixed-seed scenarios on the replicated multi-component stack
//! (`NeatConfig::multi(2).replicated()`), both CI-gated:
//!
//! * **Crash failover**: poison the TCP component of one replica while
//!   long-lived connections are in flight. The supervisor hands the dead
//!   replica's flows to the respawned head via its buddy
//!   (`ReplHandoff` → `ReplRestore` → `ReplRestored`), so recovery must be
//!   transparent: zero connections lost, zero client-visible errors in
//!   the crash window. Headlines: `failover_transparent_pct` and
//!   `failover_handoff_pct` (both expected at 100).
//!
//! * **Live migration**: `Msg::ScaleDown` drains a replica by migrating
//!   its established flows to the surviving head over the same transfer
//!   path (`MigrateOut` → `ReplRestore`), no crash involved. Headlines:
//!   `migration_krps` (service keeps running through the migration),
//!   `migration_errors` and `migration_lost_conns` (both expected at 0).
//!
//! ## `--shards N` / `NEAT_SHARDS=N`
//!
//! Accepted for CI-matrix uniformity: the core stack's message type
//! carries `Rc`-backed zero-copy packet buffers and is not `Send`, so the
//! scenario always executes on the serial engine regardless of the
//! requested shard count. The determinism job still runs the quick
//! profile at `--shards 1`, `2`, and `4` and requires byte-identical
//! JSON — guarding that no reported number depends on the requested
//! parallelism (or anything else environmental). The `neat-obs` registry
//! is disabled for the entire binary so the embedded snapshot stays
//! empty and shard-independent too.
//!
//! Everything is virtual-time deterministic: fixed seeds, no wall clock
//! in any reported number.

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat::supervisor::Role;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_bench::{quick, BenchReport, Table};
use neat_sim::Time;

fn testbed(seed: u64) -> Testbed {
    let mut spec = TestbedSpec::amd(NeatConfig::multi(2).replicated(), 4);
    spec.seed = seed;
    spec.clients = 4;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 1_000, // long-lived connections: crash impact visible
        ..Workload::default()
    };
    Testbed::build(spec)
}

struct CrashOutcome {
    transparent: bool,
    handoff: bool,
    lost: u64,
    errors: u64,
    requests: u64,
}

/// Crash the TCP component of one replica mid-run; classify the crash
/// window exactly like `table3` does (pre-crash churn is not the fault's
/// doing).
fn crash_run(seed: u64, replica: usize) -> CrashOutcome {
    let mut tb = testbed(seed);
    tb.sim.run_until(Time::from_millis(150));

    let pid = tb.deployment.comp_pids[replica]
        .iter()
        .find(|(r, _)| *r == Role::Tcp)
        .map(|(_, p)| *p)
        .expect("tcp component");
    let pre_lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    let pre_errors = tb.total_errors();
    let pre_requests = tb.total_reported();
    tb.sim.send_external(pid, Msg::Poison);
    let now = tb.sim.now();
    tb.sim.run_until(now + Time::from_millis(300));

    let lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum::<u64>()
        .saturating_sub(pre_lost);
    let errors = tb.total_errors().saturating_sub(pre_errors);
    let stats = tb.deployment.sup_stats.borrow().clone();
    CrashOutcome {
        transparent: lost == 0 && errors == 0,
        handoff: stats.handoffs_completed >= 1,
        lost,
        errors,
        requests: tb.total_reported().saturating_sub(pre_requests),
    }
}

struct MigrationOutcome {
    completed: bool,
    krps: f64,
    errors: u64,
    lost: u64,
    settle: Time,
}

/// Scale down a two-replica deployment: the drained replica's established
/// flows migrate live to the survivor; clients must not notice.
fn migration_run(seed: u64) -> MigrationOutcome {
    let mut tb = testbed(seed);
    tb.sim.run_until(Time::from_millis(150));

    let pre_errors = tb.total_errors();
    let pre_lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    let pre_requests = tb.total_reported();
    let t0 = tb.sim.now();
    tb.sim
        .send_external(tb.deployment.supervisor, Msg::ScaleDown);
    // The drain is lazy: step until the supervisor reports completion
    // (fixed virtual-time steps, so the loop shape is deterministic).
    let deadline = t0 + Time::from_millis(500);
    while tb.deployment.sup_stats.borrow().scale_downs_completed == 0 && tb.sim.now() < deadline {
        let next = tb.sim.now() + Time::from_millis(10);
        tb.sim.run_until(next);
    }
    let settle = tb.sim.now().since(t0);
    // Measure a post-migration window on the surviving replica.
    let now = tb.sim.now();
    tb.sim.run_until(now + Time::from_millis(150));

    let elapsed = tb.sim.now().since(t0);
    let requests = tb.total_reported().saturating_sub(pre_requests);
    let completed = tb.deployment.sup_stats.borrow().scale_downs_completed == 1;
    MigrationOutcome {
        completed,
        krps: requests as f64 / elapsed.as_secs_f64() / 1e3,
        errors: tb.total_errors().saturating_sub(pre_errors),
        lost: tb
            .web_metrics
            .iter()
            .map(|m| m.borrow().conns_lost_to_crash)
            .sum::<u64>()
            .saturating_sub(pre_lost),
        settle,
    }
}

fn main() {
    // Environment independence for the determinism gate: keep the obs
    // registry out of the report entirely.
    neat_obs::set_thread_enabled(false);
    let args: Vec<String> = std::env::args().collect();
    let shards: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("NEAT_SHARDS").ok())
        .map(|s| s.parse().expect("--shards expects a positive integer"))
        .unwrap_or(1)
        .max(1);
    let runs = if quick() || args.iter().any(|a| a == "--quick") {
        3
    } else {
        10
    };
    println!("failover: {runs} crash runs + 1 live migration, {shards} shard worker(s)");

    let mut report = BenchReport::new("failover");
    let mut t = Table::new(
        format!("Crash failover — TCP component poisoned, {runs} fixed-seed runs"),
        &[
            "seed",
            "transparent",
            "handoff",
            "lost",
            "errors",
            "reqs in window",
        ],
    );
    let mut transparent = 0usize;
    let mut handoffs = 0usize;
    for i in 0..runs {
        let seed = 0xFA_110 + i as u64;
        let o = crash_run(seed, i % 2);
        transparent += o.transparent as usize;
        handoffs += o.handoff as usize;
        t.row(&[
            format!("{seed:#x}"),
            if o.transparent { "yes" } else { "NO" }.into(),
            if o.handoff { "yes" } else { "NO" }.into(),
            o.lost.to_string(),
            o.errors.to_string(),
            o.requests.to_string(),
        ]);
    }
    report.table(&t);
    let pct = |n: usize| n as f64 / runs as f64 * 100.0;
    report.metric("failover_transparent_pct", pct(transparent));
    report.metric("failover_handoff_pct", pct(handoffs));

    let m = migration_run(0x5CA1E);
    let mut t2 = Table::new(
        "Live migration — ScaleDown drains one replica, flows move to its buddy",
        &[
            "completed",
            "settle (ms)",
            "krps through migration",
            "errors",
            "lost conns",
        ],
    );
    t2.row(&[
        if m.completed { "yes" } else { "NO" }.into(),
        format!("{:.1}", m.settle.as_secs_f64() * 1e3),
        format!("{:.1}", m.krps),
        m.errors.to_string(),
        m.lost.to_string(),
    ]);
    report.table(&t2);
    report.metric("migration_krps", m.krps);
    report.metric("migration_errors", m.errors as f64);
    report.metric("migration_lost_conns", m.lost as f64);
    report.finish();
    println!(
        "With buddy replication every TCP crash should hand its flows to\n\
         the respawned head (transparent + handoff = 100%), and a live\n\
         migration should drain a replica with zero client-visible errors."
    );
}
