//! Run the complete evaluation: every table and figure of §6, writing
//! paper-shaped output to stdout and `results/*.txt`.
//!
//! `NEAT_BENCH_QUICK=1` shortens measurement windows for a fast pass;
//! `NEAT_TABLE3_RUNS=N` controls the fault-injection campaign size.

use std::process::Command;

fn main() {
    let bins = [
        "table1",
        "fig4_5",
        "fig7",
        "fig9",
        "fig11",
        "fig12",
        "table2",
        "table3",
        "fig13",
        "security",
        "ablations",
    ];
    let _ = std::fs::remove_dir_all("results");
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    for b in bins {
        println!("\n=== {b} ===");
        let status = Command::new(dir.join(b))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {b}: {e}"));
        assert!(status.success(), "{b} failed");
    }
    println!("\nAll experiments complete; outputs collected under results/.");
}
