//! Run the complete evaluation: every table and figure of §6, writing
//! paper-shaped output to stdout and `results/*.txt`, plus one unified
//! `results/BENCH_<name>.json` per experiment.
//!
//! `--quick` (or `NEAT_BENCH_QUICK=1`) runs the deterministic smoke
//! configuration the CI regression gate compares against
//! `baselines/bench_baselines.json`: shorter measurement windows, the
//! file-size sweep capped at 100K, and a 10-run fault campaign.
//! `NEAT_TABLE3_RUNS=N` still overrides the fault-injection campaign size.

use std::process::Command;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || neat_bench::quick();
    let bins = [
        "table1",
        "fig4_5",
        "fig7",
        "fig9",
        "fig11",
        "fig12",
        "table2",
        "table3",
        "fig13",
        "security",
        "ablations",
    ];
    let _ = std::fs::remove_dir_all("results");
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    for b in bins {
        println!("\n=== {b} ===");
        let mut cmd = Command::new(dir.join(b));
        if quick {
            cmd.env("NEAT_BENCH_QUICK", "1");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {b}: {e}"));
        assert!(status.success(), "{b} failed");
    }
    println!("\nAll experiments complete; outputs collected under results/.");
}
