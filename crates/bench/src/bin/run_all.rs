//! Run the complete evaluation: every table and figure of §6, writing
//! paper-shaped output to stdout and `results/*.txt`, plus one unified
//! `results/BENCH_<name>.json` per experiment.
//!
//! `--quick` (or `NEAT_BENCH_QUICK=1`) runs the deterministic smoke
//! configuration the CI regression gate compares against
//! `baselines/bench_baselines.json`: shorter measurement windows, the
//! file-size sweep capped at 100K, and a 10-run fault campaign.
//! `NEAT_TABLE3_RUNS=N` still overrides the fault-injection campaign size.
//!
//! Every binary runs even when an earlier one fails; failures are
//! collected and reported together, and the exit status is non-zero if
//! any binary failed (so CI shows the full picture instead of dying at
//! the first broken experiment).

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick") || neat_bench::quick();
    // `--shards N` is forwarded to shard-aware experiments (conn_scale;
    // failover accepts it for CI-matrix uniformity) via NEAT_SHARDS;
    // shard-oblivious binaries ignore it.
    let shards = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let bins = [
        "table1",
        "fig4_5",
        "fig7",
        "fig9",
        "fig11",
        "fig12",
        "table2",
        "table3",
        "failover",
        "fig13",
        "security",
        "ablations",
        "cc_compare",
        "conn_scale",
        "par_scale",
    ];
    let _ = std::fs::remove_dir_all("results");
    let exe = std::env::current_exe().expect("self path");
    let dir = exe.parent().expect("bin dir");
    let mut failed: Vec<String> = Vec::new();
    for b in bins {
        println!("\n=== {b} ===");
        let mut cmd = Command::new(dir.join(b));
        if quick {
            cmd.env("NEAT_BENCH_QUICK", "1");
        }
        if let Some(s) = &shards {
            cmd.env("NEAT_SHARDS", s);
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("!!! {b} exited with {status}");
                failed.push(b.to_string());
            }
            Err(e) => {
                eprintln!("!!! failed to launch {b}: {e}");
                failed.push(b.to_string());
            }
        }
    }
    if failed.is_empty() {
        println!("\nAll experiments complete; outputs collected under results/.");
    } else {
        eprintln!(
            "\n{} of {} experiments FAILED: {}",
            failed.len(),
            bins.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
