//! Ablation studies for the design choices the paper motivates but does
//! not isolate:
//!
//! 1. **Flow-tracking filters** (§3.4/§4) — disable them and scale down:
//!    existing connections get rehashed to the wrong replica and die.
//! 2. **TSO/GSO** (§6) — large-file throughput with and without
//!    segmentation offload.
//! 3. **Congestion control** — Reno vs CUBIC on the benchmark workload.
//! 4. **MWAIT spin window** — the §4 fast-channel trade-off: longer
//!    spinning lowers low-load latency but burns idle CPU.
//! 5. **Batching × zero-copy pool** (§3.4) — per-link message coalescing
//!    and the refcounted `PktBuf` pool, on/off in all four combinations.

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat_apps::scenario::{MonoTestbed, MonoTestbedSpec, Testbed, TestbedSpec, Workload};
use neat_apps::FileStore;
use neat_bench::{windows, BenchReport, Table};
use neat_sim::Time;
use neat_tcp::CongestionAlgo;

/// 1. Scale-down with vs without connection tracking in the NIC.
fn ablate_tracking(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 1 — NIC flow tracking during scale-down",
        &["tracking filters", "connections broken", "drained cleanly"],
    );
    for tracking in [true, false] {
        let mut spec = TestbedSpec::amd(NeatConfig::single(2), 3);
        spec.clients = 6;
        spec.workload = Workload {
            conns_per_client: 4,
            requests_per_conn: 500,
            ..Workload::default()
        };
        let mut tb = Testbed::build(spec);
        if !tracking {
            tb.sim
                .send_external(tb.deployment.nic, Msg::NicSetTracking { on: false });
        }
        tb.sim.run_until(Time::from_millis(300));
        let errs0 = tb.total_errors();
        tb.sim
            .send_external(tb.deployment.supervisor, Msg::ScaleDown);
        let mut drained = false;
        for _ in 0..30 {
            tb.sim.run_until(tb.sim.now() + Time::from_millis(100));
            if tb.deployment.sup_stats.borrow().scale_downs_completed == 1 {
                drained = true;
                break;
            }
        }
        if tracking {
            report.metric("tracking_conns_broken", (tb.total_errors() - errs0) as f64);
        }
        t.row(&[
            tracking.to_string(),
            (tb.total_errors() - errs0).to_string(),
            drained.to_string(),
        ]);
    }
    report.table(&t);
}

/// 2. TSO on/off at a large file size (1 MB).
fn ablate_tso(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 2 — TSO/GSO at 1MB responses (Linux baseline)",
        &["tso", "MB/s", "krps", "avg kernel-ctx CPU"],
    );
    for tso in [true, false] {
        let mut tuning = neat_monolith::MonoTuning::best();
        tuning.tso = tso;
        let mut spec = MonoTestbedSpec::amd(tuning);
        spec.files = FileStore::size_sweep(&[1_000_000]);
        spec.workload = Workload {
            conns_per_client: 8,
            requests_per_conn: 100,
            path: "/file1000000".into(),
            timeout_ns: 10_000_000_000,
            think_ns: 0,
        };
        let (warm, win) = windows();
        let mut tb = MonoTestbed::build(spec);
        let r = tb.measure(warm, win);
        let avg_load: f64 = tb
            .web_threads
            .iter()
            .map(|t| tb.sim.thread_stats(*t).load(r.duration))
            .sum::<f64>()
            / tb.web_threads.len() as f64;
        if tso {
            report.metric("tso_on_mbps", r.mbps);
        }
        t.row(&[
            tso.to_string(),
            format!("{:.1}", r.mbps),
            format!("{:.2}", r.krps),
            format!("{:.0}%", avg_load * 100.0),
        ]);
    }
    report.table(&t);
}

/// 3. Reno vs CUBIC on the standard benchmark.
fn ablate_congestion(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 3 — congestion control (NEaT 2x, AMD)",
        &["algorithm", "krps", "mean latency"],
    );
    for (algo, name) in [
        (CongestionAlgo::Reno, "Reno"),
        (CongestionAlgo::Cubic, "CUBIC"),
    ] {
        let mut cfg = NeatConfig::single(2);
        cfg.tcp.congestion = algo;
        let mut spec = TestbedSpec::amd(cfg, 4);
        spec.workload = Workload {
            conns_per_client: 16,
            requests_per_conn: 100,
            ..Workload::default()
        };
        let (warm, win) = windows();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(warm, win);
        if name == "CUBIC" {
            report.metric("cubic_krps", r.krps);
        }
        t.row(&[
            name.into(),
            format!("{:.1}", r.krps),
            format!("{}", r.mean_latency),
        ]);
    }
    report.table(&t);
}

/// 5. Batched zero-copy message path (§3.4) — per-link coalescing × the
///    refcounted packet-buffer pool, at the replica count where per-message
///    wakeups dominate (NEaT 8x HT on the Xeon). The `batching off, pool
///    off` row is the scalar-dispatch, copy-everywhere ablation the
///    headline speedup is measured against.
fn ablate_batching(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 5 — batching x zero-copy pool (NEaT 8x HT, Xeon, 5 webs)",
        &[
            "batching",
            "pool",
            "krps",
            "batch occupancy",
            "copies avoided",
        ],
    );
    let mut on_krps = 0.0;
    let mut off_krps = 0.0;
    for (batch, pool) in [(true, true), (true, false), (false, true), (false, false)] {
        neat_net::pktbuf::reset();
        neat_net::pktbuf::set_pooling(pool);
        let mut spec = TestbedSpec::xeon(NeatConfig::single(8), 5);
        spec.batch_ns = if batch { 2_000 } else { 0 };
        // Stack-ceiling mode: a lightweight application (null-RPC style)
        // instead of the calibrated lighttpd cost, so the message path —
        // the thing batching and the pool amortize — is the contended
        // resource rather than the web instances. This isolates the fig7
        // asymptote: the throughput the 8-replica stack fabric itself
        // sustains.
        spec.web_request_cycles = Some(6_000);
        // 200-byte responses keep the 10GbE link far from saturation
        // (which would mask the message path), and 64 connections per
        // client keep enough requests in flight that the closed loop is
        // throughput-bound, not latency-bound.
        let size: usize = 200;
        spec.files = FileStore::size_sweep(&[size]);
        spec.workload = Workload {
            conns_per_client: 64,
            requests_per_conn: 100,
            path: format!("/file{size}"),
            ..Workload::default()
        };
        let (warm, win) = windows();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(warm, win);
        let occupancy = tb.sim.batch_stats().occupancy();
        let copies = neat_net::pktbuf::stats().copies_avoided;
        if std::env::var("NEAT_ABLATION_LOADS").is_ok() {
            // Busy fraction excluding spin-poll: the true utilization.
            let load = |t: neat_sim::HwThreadId| {
                tb.sim.thread_stats(t).busy_ns as f64 / r.duration.as_nanos() as f64
            };
            let rep: Vec<String> = tb
                .replica_threads
                .iter()
                .map(|t| format!("{:.0}%", load(*t) * 100.0))
                .collect();
            let web: Vec<String> = tb
                .web_threads
                .iter()
                .map(|t| format!("{:.0}%", load(*t) * 100.0))
                .collect();
            let cli: Vec<String> = (0..4)
                .map(|c| {
                    let t = tb.sim.hw_thread(tb.client_machine, c, 0);
                    format!("{:.0}%", load(t) * 100.0)
                })
                .collect();
            eprintln!(
                "batch={batch} pool={pool}: krps {:.1} lat {} occ {occupancy:.2} driver {:.0}% replicas {rep:?} webs {web:?} clients[0..4] {cli:?} errors {}",
                r.krps,
                r.mean_latency,
                load(tb.driver_thread) * 100.0,
                r.conn_errors
            );
        }
        if batch && pool {
            on_krps = r.krps;
            report.metric("batch_on_krps", r.krps);
            report.metric("batch_occupancy", occupancy);
            report.metric("copies_avoided", copies as f64);
        } else if !batch && !pool {
            off_krps = r.krps;
            report.metric("batch_off_krps", r.krps);
        }
        t.row(&[
            (if batch { "on" } else { "off" }).into(),
            (if pool { "on" } else { "off" }).into(),
            format!("{:.1}", r.krps),
            format!("{occupancy:.2}"),
            copies.to_string(),
        ]);
    }
    neat_net::pktbuf::set_pooling(true);
    report.metric("batch_speedup", on_krps / off_krps);
    report.table(&t);
}

/// 4. Low-load latency vs driver CPU across replica counts — the
///    Figure 12 trade-off summarized.
fn ablate_low_load(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 4 — low-load (8 conns, 1 req/conn) latency vs replica count",
        &["config", "krps", "mean latency", "driver load"],
    );
    for (name, cfg) in [
        ("NEaT 1x", NeatConfig::single(1)),
        ("NEaT 3x", NeatConfig::single(3)),
        ("Multi 1x", NeatConfig::multi(1)),
        ("Multi 2x", NeatConfig::multi(2)),
    ] {
        let mut spec = TestbedSpec::amd(cfg, 1);
        spec.clients = 8;
        spec.workload = Workload {
            conns_per_client: 1,
            requests_per_conn: 1,
            ..Workload::default()
        };
        let (warm, win) = windows();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(warm, win);
        let drv = tb.sim.thread_stats(tb.driver_thread).load(r.duration);
        t.row(&[
            name.into(),
            format!("{:.1}", r.krps),
            format!("{}", r.mean_latency),
            format!("{:.0}%", drv * 100.0),
        ]);
    }
    report.table(&t);
}

fn main() {
    let mut report = BenchReport::new("ablations");
    if std::env::var("NEAT_ABLATION_ONLY_BATCHING").is_ok() {
        ablate_batching(&mut report);
        report.finish();
        return;
    }
    ablate_tracking(&mut report);
    ablate_tso(&mut report);
    ablate_congestion(&mut report);
    ablate_low_load(&mut report);
    ablate_batching(&mut report);
    report.finish();
}
