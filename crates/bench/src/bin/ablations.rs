//! Ablation studies for the design choices the paper motivates but does
//! not isolate:
//!
//! 1. **Flow-tracking filters** (§3.4/§4) — disable them and scale down:
//!    existing connections get rehashed to the wrong replica and die.
//! 2. **TSO/GSO** (§6) — large-file throughput with and without
//!    segmentation offload.
//! 3. **Congestion control** — Reno vs CUBIC on the benchmark workload.
//! 4. **MWAIT spin window** — the §4 fast-channel trade-off: longer
//!    spinning lowers low-load latency but burns idle CPU.

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat_apps::scenario::{MonoTestbed, MonoTestbedSpec, Testbed, TestbedSpec, Workload};
use neat_apps::FileStore;
use neat_bench::{windows, BenchReport, Table};
use neat_sim::Time;
use neat_tcp::CongestionAlgo;

/// 1. Scale-down with vs without connection tracking in the NIC.
fn ablate_tracking(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 1 — NIC flow tracking during scale-down",
        &["tracking filters", "connections broken", "drained cleanly"],
    );
    for tracking in [true, false] {
        let mut spec = TestbedSpec::amd(NeatConfig::single(2), 3);
        spec.clients = 6;
        spec.workload = Workload {
            conns_per_client: 4,
            requests_per_conn: 500,
            ..Workload::default()
        };
        let mut tb = Testbed::build(spec);
        if !tracking {
            tb.sim
                .send_external(tb.deployment.nic, Msg::NicSetTracking { on: false });
        }
        tb.sim.run_until(Time::from_millis(300));
        let errs0 = tb.total_errors();
        tb.sim
            .send_external(tb.deployment.supervisor, Msg::ScaleDown);
        let mut drained = false;
        for _ in 0..30 {
            tb.sim.run_until(tb.sim.now() + Time::from_millis(100));
            if tb.deployment.sup_stats.borrow().scale_downs_completed == 1 {
                drained = true;
                break;
            }
        }
        if tracking {
            report.metric("tracking_conns_broken", (tb.total_errors() - errs0) as f64);
        }
        t.row(&[
            tracking.to_string(),
            (tb.total_errors() - errs0).to_string(),
            drained.to_string(),
        ]);
    }
    report.table(&t);
}

/// 2. TSO on/off at a large file size (1 MB).
fn ablate_tso(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 2 — TSO/GSO at 1MB responses (Linux baseline)",
        &["tso", "MB/s", "krps", "avg kernel-ctx CPU"],
    );
    for tso in [true, false] {
        let mut tuning = neat_monolith::MonoTuning::best();
        tuning.tso = tso;
        let mut spec = MonoTestbedSpec::amd(tuning);
        spec.files = FileStore::size_sweep(&[1_000_000]);
        spec.workload = Workload {
            conns_per_client: 8,
            requests_per_conn: 100,
            path: "/file1000000".into(),
            timeout_ns: 10_000_000_000,
            think_ns: 0,
        };
        let (warm, win) = windows();
        let mut tb = MonoTestbed::build(spec);
        let r = tb.measure(warm, win);
        let avg_load: f64 = tb
            .web_threads
            .iter()
            .map(|t| tb.sim.thread_stats(*t).load(r.duration))
            .sum::<f64>()
            / tb.web_threads.len() as f64;
        if tso {
            report.metric("tso_on_mbps", r.mbps);
        }
        t.row(&[
            tso.to_string(),
            format!("{:.1}", r.mbps),
            format!("{:.2}", r.krps),
            format!("{:.0}%", avg_load * 100.0),
        ]);
    }
    report.table(&t);
}

/// 3. Reno vs CUBIC on the standard benchmark.
fn ablate_congestion(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 3 — congestion control (NEaT 2x, AMD)",
        &["algorithm", "krps", "mean latency"],
    );
    for (algo, name) in [
        (CongestionAlgo::Reno, "Reno"),
        (CongestionAlgo::Cubic, "CUBIC"),
    ] {
        let mut cfg = NeatConfig::single(2);
        cfg.tcp.congestion = algo;
        let mut spec = TestbedSpec::amd(cfg, 4);
        spec.workload = Workload {
            conns_per_client: 16,
            requests_per_conn: 100,
            ..Workload::default()
        };
        let (warm, win) = windows();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(warm, win);
        if name == "CUBIC" {
            report.metric("cubic_krps", r.krps);
        }
        t.row(&[
            name.into(),
            format!("{:.1}", r.krps),
            format!("{}", r.mean_latency),
        ]);
    }
    report.table(&t);
}

/// 4. Low-load latency vs driver CPU across replica counts — the
///    Figure 12 trade-off summarized.
fn ablate_low_load(report: &mut BenchReport) {
    let mut t = Table::new(
        "Ablation 4 — low-load (8 conns, 1 req/conn) latency vs replica count",
        &["config", "krps", "mean latency", "driver load"],
    );
    for (name, cfg) in [
        ("NEaT 1x", NeatConfig::single(1)),
        ("NEaT 3x", NeatConfig::single(3)),
        ("Multi 1x", NeatConfig::multi(1)),
        ("Multi 2x", NeatConfig::multi(2)),
    ] {
        let mut spec = TestbedSpec::amd(cfg, 1);
        spec.clients = 8;
        spec.workload = Workload {
            conns_per_client: 1,
            requests_per_conn: 1,
            ..Workload::default()
        };
        let (warm, win) = windows();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(warm, win);
        let drv = tb.sim.thread_stats(tb.driver_thread).load(r.duration);
        t.row(&[
            name.into(),
            format!("{:.1}", r.krps),
            format!("{}", r.mean_latency),
            format!("{:.0}%", drv * 100.0),
        ]);
    }
    report.table(&t);
}

fn main() {
    let mut report = BenchReport::new("ablations");
    ablate_tracking(&mut report);
    ablate_tso(&mut report);
    ablate_congestion(&mut report);
    ablate_low_load(&mut report);
    report.finish();
}
