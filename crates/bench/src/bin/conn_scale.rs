//! # conn_scale — million-connection scale-out benchmark
//!
//! Drives one server [`TcpStack`] with 100k+ (10k in `--quick`) simulated
//! long-lived clients on a fixed-seed virtual clock and reports the three
//! scale headline metrics the CI gate watches:
//!
//! * `conn_scale_krps` — steady-state completed requests per virtual
//!   second (in thousands);
//! * `conn_scale_mem_per_conn_bytes` — accounted server memory per live
//!   connection (the `ConnBudget` number exported through `neat-obs`);
//! * `conn_scale_p99_us` — p99 request completion latency in virtual µs.
//!
//! The client population is deliberately heterogeneous — the mixes that
//! historically melt per-socket timer lists and linear demux scans:
//!
//! * **steady requesters** (55%): small request, 512 B response, repeat;
//! * **idle keepalivers** (20%): connect once, then only keepalive
//!   probes — pure timer-wheel load;
//! * **slow readers** (10%): ask for 8 KiB and sip it a few hundred
//!   bytes at a time — window backpressure + probe timers;
//! * **churners** (15%): request, close, reconnect — TIME_WAIT wheel
//!   entries, inline reaping, demux insert/remove churn.
//!
//! Everything is deterministic: one seed, virtual time only, no wall
//! clock anywhere — CI runs the quick profile twice and requires
//! byte-identical JSON.

use neat_bench::{BenchReport, Table};
use neat_tcp::{SockEvent, SocketId, TcpConfig, TcpStack};
use neat_util::{FxHashMap, Rng};
use std::net::Ipv4Addr;

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const PORT: u16 = 80;
const SEED: u64 = 0xC0_FF_EE_00;

/// Virtual tick (event-loop cadence).
const TICK_NS: u64 = 1_000_000; // 1 ms
/// Virtual cost charged per pump round inside a tick (gives sub-tick
/// latency resolution without a per-segment event queue).
const ROUND_NS: u64 = 2_000; // 2 µs

const REQ_LEN: usize = 16;
const RESP_SMALL: usize = 512;
const RESP_BIG: usize = 8 * 1024;

/// Per-stack ephemeral-port span is 16384; stay under it per client
/// stack (churners recycle ports on top).
const CONNS_PER_STACK: usize = 12_000;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Steady,
    Keepalive,
    SlowReader,
    Churner,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    Connecting,
    Idle,
    /// Waiting for `expect` response bytes, `got` received so far.
    Awaiting {
        expect: usize,
        got: usize,
        sent_at: u64,
    },
    /// Churner linger between connections.
    Disconnected {
        reconnect_at_tick: u64,
    },
}

#[derive(Debug)]
struct Conn {
    stack: usize,
    id: SocketId,
    role: Role,
    state: ConnState,
    /// Next tick this connection acts (role-specific pacing).
    next_tick: u64,
}

struct World {
    server: TcpStack,
    clients: Vec<TcpStack>,
    /// Per client stack: socket id -> conn index (lookup only — never
    /// iterated, so its order can't leak into results).
    by_sock: Vec<FxHashMap<SocketId, usize>>,
    conns: Vec<Conn>,
    listener: SocketId,
    /// Server-side request reassembly: bytes of a partial request seen.
    srv_partial: FxHashMap<SocketId, Vec<u8>>,
    /// Server-side responses that hit a full send buffer: (id, remaining).
    srv_backlog: Vec<(SocketId, usize)>,
    now: u64,
    completed: u64,
    completed_steady: u64,
    latencies_ns: Vec<u64>,
    refused: u64,
}

impl World {
    fn new(n_conns: usize) -> World {
        let server_cfg = TcpConfig {
            initial_rto_ns: 20_000_000,
            backlog: 4096,
            delayed_ack_ns: 0,
            nagle: false,
            ..TcpConfig::default()
        };
        let client_cfg = TcpConfig {
            initial_rto_ns: 20_000_000,
            delayed_ack_ns: 0,
            nagle: false,
            // Churners must recycle ports within the run.
            time_wait_ns: 50_000_000,
            // Idle keepalivers exercise the wheel's coarse levels.
            keepalive_ns: 100_000_000,
            ..TcpConfig::default()
        };
        let n_stacks = n_conns.div_ceil(CONNS_PER_STACK);
        let mut clients = Vec::with_capacity(n_stacks);
        let mut by_sock = Vec::with_capacity(n_stacks);
        for i in 0..n_stacks {
            let ip = Ipv4Addr::new(10, 0, 1 + (i / 250) as u8, (i % 250) as u8 + 1);
            clients.push(TcpStack::new(ip, client_cfg.clone()));
            by_sock.push(FxHashMap::default());
        }
        let mut server = TcpStack::new(SERVER_IP, server_cfg);
        let listener = server.listen(PORT).expect("listen");
        World {
            server,
            clients,
            by_sock,
            conns: Vec::with_capacity(n_conns),
            listener,
            srv_partial: FxHashMap::default(),
            srv_backlog: Vec::new(),
            now: 0,
            completed: 0,
            completed_steady: 0,
            latencies_ns: Vec::new(),
            refused: 0,
        }
    }

    fn role_of(idx: usize) -> Role {
        match idx % 20 {
            0..=10 => Role::Steady,
            11..=14 => Role::Keepalive,
            15..=16 => Role::SlowReader,
            _ => Role::Churner,
        }
    }

    /// Open connection `idx` on its home stack.
    fn open(&mut self, idx: usize, rng: &mut Rng, tick: u64) {
        let stack = idx / CONNS_PER_STACK % self.clients.len();
        match self.clients[stack].connect(SERVER_IP, PORT, self.now) {
            Ok(id) => {
                self.by_sock[stack].insert(id, idx);
                let role = Self::role_of(idx);
                let c = Conn {
                    stack,
                    id,
                    role,
                    state: ConnState::Connecting,
                    next_tick: tick + rng.gen_range(1u64..16),
                };
                if idx < self.conns.len() {
                    self.conns[idx] = c;
                } else {
                    debug_assert_eq!(idx, self.conns.len());
                    self.conns.push(c);
                }
            }
            Err(_) => self.refused += 1,
        }
    }

    /// Send one request on conn `idx`. Byte 0 selects the response size.
    fn request(&mut self, idx: usize) {
        let (stack, id, big) = {
            let c = &self.conns[idx];
            (c.stack, c.id, c.role == Role::SlowReader)
        };
        let mut req = [0u8; REQ_LEN];
        req[0] = big as u8;
        if self.clients[stack].send(id, &req).is_ok() {
            self.conns[idx].state = ConnState::Awaiting {
                expect: if big { RESP_BIG } else { RESP_SMALL },
                got: 0,
                sent_at: self.now,
            };
        }
    }

    /// Server: accept, read requests, write responses; retry the
    /// backlogged ones.
    fn server_work(&mut self) {
        while self.server.acceptable(self.listener) > 0 {
            let _ = self.server.accept(self.listener);
        }
        while let Some(ev) = self.server.poll_event() {
            match ev {
                SockEvent::Readable(id) => self.server_read(id),
                SockEvent::PeerClosed(id) => {
                    // Active-close side is the client; finish our half.
                    let _ = self.server.close(id, self.now);
                    self.srv_partial.remove(&id);
                }
                _ => {}
            }
        }
        // Retry responses that earlier hit a full send buffer.
        if !self.srv_backlog.is_empty() {
            let mut still = Vec::new();
            for (id, remaining) in std::mem::take(&mut self.srv_backlog) {
                let left = self.server_send(id, remaining);
                if left > 0 {
                    still.push((id, left));
                }
            }
            self.srv_backlog = still;
        }
    }

    fn server_read(&mut self, id: SocketId) {
        let mut buf = [0u8; 4096];
        loop {
            let n = match self.server.recv(id, &mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(_) => break,
            };
            let mut sizes = Vec::new();
            {
                let pending = self.srv_partial.entry(id).or_default();
                pending.extend_from_slice(&buf[..n]);
                while pending.len() >= REQ_LEN {
                    let big = pending[0] != 0;
                    pending.drain(..REQ_LEN);
                    sizes.push(if big { RESP_BIG } else { RESP_SMALL });
                }
            }
            for size in sizes {
                let left = self.server_send(id, size);
                if left > 0 {
                    self.srv_backlog.push((id, left));
                }
            }
            if n < buf.len() {
                break;
            }
        }
        if self
            .srv_partial
            .get(&id)
            .map(|p| p.is_empty())
            .unwrap_or(false)
        {
            self.srv_partial.remove(&id);
        }
    }

    /// Push up to `size` response bytes; returns bytes still owed.
    fn server_send(&mut self, id: SocketId, size: usize) -> usize {
        const CHUNK: [u8; 1024] = [0x42; 1024];
        let mut left = size;
        while left > 0 {
            let n = left.min(CHUNK.len());
            match self.server.send(id, &CHUNK[..n]) {
                Ok(sent) => {
                    left -= sent;
                    if sent < n {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        left
    }

    /// Drain one client stack's events and readable data.
    fn client_work(&mut self, s: usize, rng: &mut Rng, tick: u64, steady: bool) {
        while let Some(ev) = self.clients[s].poll_event() {
            let idx = match self.by_sock[s].get(&ev.socket()) {
                Some(i) => *i,
                None => continue,
            };
            // Stale id (the slot was already recycled to a new socket):
            // drop the mapping and ignore the event.
            if self.conns[idx].id != ev.socket() {
                self.by_sock[s].remove(&ev.socket());
                continue;
            }
            match ev {
                SockEvent::Connected(_) if self.conns[idx].state == ConnState::Connecting => {
                    self.conns[idx].state = ConnState::Idle;
                }
                SockEvent::Connected(_) => {}
                SockEvent::Readable(id) => self.client_read(s, idx, id, rng, tick, steady),
                SockEvent::Aborted(id) | SockEvent::Closed(id) => {
                    // Churners reach here after their active close; anyone
                    // else losing a connection re-opens lazily.
                    if let ConnState::Disconnected { .. } = self.conns[idx].state {
                    } else if self.conns[idx].role == Role::Churner {
                        self.by_sock[s].remove(&id);
                        self.conns[idx].state = ConnState::Disconnected {
                            reconnect_at_tick: tick + rng.gen_range(5u64..20),
                        };
                    }
                }
                _ => {}
            }
        }
    }

    fn client_read(
        &mut self,
        s: usize,
        idx: usize,
        id: SocketId,
        rng: &mut Rng,
        tick: u64,
        steady: bool,
    ) {
        // Slow readers sip on their own schedule, not on readiness.
        if self.conns[idx].role == Role::SlowReader {
            return;
        }
        let mut buf = [0u8; 2048];
        loop {
            let n = match self.clients[s].recv(id, &mut buf) {
                Ok(0) => return,
                Ok(n) => n,
                Err(_) => return,
            };
            self.note_received(idx, n, rng, tick, steady);
            if n < buf.len() {
                return;
            }
        }
    }

    fn note_received(&mut self, idx: usize, n: usize, rng: &mut Rng, tick: u64, steady: bool) {
        if let ConnState::Awaiting {
            expect,
            got,
            sent_at,
        } = self.conns[idx].state
        {
            let got = got + n;
            if got >= expect {
                self.completed += 1;
                if steady {
                    self.completed_steady += 1;
                    self.latencies_ns.push(self.now - sent_at);
                }
                let role = self.conns[idx].role;
                match role {
                    Role::Churner => {
                        let (s, id) = (self.conns[idx].stack, self.conns[idx].id);
                        let _ = self.clients[s].close(id, self.now);
                        self.by_sock[s].remove(&id);
                        self.conns[idx].state = ConnState::Disconnected {
                            reconnect_at_tick: tick + rng.gen_range(5u64..20),
                        };
                    }
                    _ => {
                        self.conns[idx].state = ConnState::Idle;
                        self.conns[idx].next_tick = tick + rng.gen_range(2u64..12);
                    }
                }
            } else {
                self.conns[idx].state = ConnState::Awaiting {
                    expect,
                    got,
                    sent_at,
                };
            }
        }
    }

    /// Fire all due timers on every stack (wheel cascade included).
    fn run_timers(&mut self) {
        let now = self.now;
        while let Some(t) = self.server.next_timeout() {
            if t > now {
                break;
            }
            self.server.on_timer(t);
        }
        for c in &mut self.clients {
            while let Some(t) = c.next_timeout() {
                if t > now {
                    break;
                }
                c.on_timer(t);
            }
        }
    }

    /// Shuttle segments until quiescent, charging `ROUND_NS` per round.
    fn pump(&mut self) {
        loop {
            let mut moved = false;
            for s in 0..self.clients.len() {
                while let Some((_dst, h, p)) = self.clients[s].poll_transmit(self.now) {
                    let src = self.clients[s].local_ip;
                    self.server.handle_segment(src, &h, &p, self.now);
                    moved = true;
                }
            }
            self.server_work();
            // Server replies, routed back by destination IP.
            while let Some((dst, h, p)) = self.server.poll_transmit(self.now) {
                let s = self.stack_of_ip(dst);
                self.clients[s].handle_segment(SERVER_IP, &h, &p, self.now);
                moved = true;
            }
            if !moved {
                break;
            }
            self.now += ROUND_NS;
        }
    }

    fn stack_of_ip(&self, ip: Ipv4Addr) -> usize {
        let o = ip.octets();
        (o[2] as usize - 1) * 250 + (o[3] as usize - 1)
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let i = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[i]
}

fn main() {
    let quick_flag = std::env::args().any(|a| a == "--quick");
    if quick_flag {
        // Keep the report's `quick` field consistent however we're invoked.
        std::env::set_var("NEAT_BENCH_QUICK", "1");
    }
    let quick = neat_bench::quick();
    let n_conns: usize = if quick { 10_000 } else { 100_000 };
    let ramp_ticks: u64 = 50;
    let steady_ticks: u64 = if quick { 150 } else { 250 };
    let total_ticks = ramp_ticks + steady_ticks;
    let warmup_ticks = ramp_ticks + 20;

    let mut rng = Rng::seed_from_u64(SEED);
    let mut w = World::new(n_conns);
    let per_tick = n_conns.div_ceil(ramp_ticks as usize);
    let mut opened = 0usize;
    let mut mem_per_conn_half = 0.0f64;
    let mut steady_sample: Vec<(u64, usize, f64)> = Vec::new();

    for tick in 0..total_ticks {
        w.now = w.now.max(tick * TICK_NS);
        let steady = tick >= warmup_ticks;

        // Ramp: open the next batch of connections.
        if opened < n_conns {
            let batch = per_tick.min(n_conns - opened);
            for idx in opened..opened + batch {
                w.open(idx, &mut rng, tick);
            }
            opened += batch;
        }

        // Role-driven client actions.
        for idx in 0..w.conns.len() {
            if w.conns[idx].next_tick > tick {
                continue;
            }
            match (w.conns[idx].role, w.conns[idx].state) {
                (_, ConnState::Disconnected { reconnect_at_tick }) if tick >= reconnect_at_tick => {
                    w.open(idx, &mut rng, tick);
                }
                (Role::Steady, ConnState::Idle) | (Role::Churner, ConnState::Idle) => {
                    w.request(idx);
                    w.conns[idx].next_tick = tick + rng.gen_range(2u64..12);
                }
                (Role::SlowReader, ConnState::Idle) => {
                    w.request(idx);
                    w.conns[idx].next_tick = tick + 4;
                }
                (Role::SlowReader, ConnState::Awaiting { .. }) => {
                    // Sip a few hundred bytes, then wait again.
                    let (s, id) = (w.conns[idx].stack, w.conns[idx].id);
                    let mut sip = [0u8; 256];
                    if let Ok(n) = w.clients[s].recv(id, &mut sip) {
                        w.note_received(idx, n, &mut rng, tick, steady);
                    }
                    w.conns[idx].next_tick = tick + 4;
                }
                (Role::Keepalive, ConnState::Idle) => {
                    // Stays idle on purpose; push the next check far out.
                    w.conns[idx].next_tick = tick + 1000;
                }
                _ => {}
            }
        }

        w.run_timers();
        w.pump();
        for s in 0..w.clients.len() {
            w.client_work(s, &mut rng, tick, steady);
        }
        w.pump();

        if tick == ramp_ticks / 2 {
            mem_per_conn_half = w.server.budget().bytes_per_conn();
        }
        if steady && (tick - warmup_ticks).is_multiple_of(50) {
            steady_sample.push((
                tick,
                w.server.conn_count(),
                w.server.budget().bytes_per_conn(),
            ));
        }
    }

    // Headline numbers.
    if std::env::var("CONN_SCALE_DEBUG").is_ok() {
        let mut dist = std::collections::BTreeMap::new();
        for id in w.server.socket_ids() {
            if let Some(st) = w.server.state(id) {
                *dist.entry(format!("{st:?}")).or_insert(0u64) += 1;
            }
        }
        eprintln!("server socket states: {dist:?}");
        let mut cdist = std::collections::BTreeMap::new();
        for c in &w.clients {
            for id in c.socket_ids() {
                if let Some(st) = c.state(id) {
                    *cdist.entry(format!("{st:?}")).or_insert(0u64) += 1;
                }
            }
        }
        eprintln!("client socket states: {cdist:?}");
    }
    w.server.publish_mem_gauges();
    let steady_secs = (steady_ticks - 20) as f64 * TICK_NS as f64 / 1e9;
    let krps = w.completed_steady as f64 / steady_secs / 1e3;
    let mem_per_conn = w.server.budget().bytes_per_conn();
    w.latencies_ns.sort_unstable();
    let p50_us = percentile(&w.latencies_ns, 0.50) as f64 / 1e3;
    let p99_us = percentile(&w.latencies_ns, 0.99) as f64 / 1e3;

    let mut report = BenchReport::new("conn_scale");
    let mut t = Table::new(
        format!("conn_scale: {n_conns} long-lived clients (fixed seed)"),
        &["metric", "value"],
    );
    t.row(&["clients (target)".into(), n_conns.to_string()]);
    t.row(&[
        "server live conns (end)".into(),
        w.server.conn_count().to_string(),
    ]);
    t.row(&["requests completed".into(), w.completed.to_string()]);
    t.row(&["steady krps".into(), format!("{krps:.1}")]);
    t.row(&["p50 latency (us)".into(), format!("{p50_us:.1}")]);
    t.row(&["p99 latency (us)".into(), format!("{p99_us:.1}")]);
    t.row(&[
        "bytes/conn @ half ramp".into(),
        format!("{mem_per_conn_half:.0}"),
    ]);
    t.row(&["bytes/conn @ end".into(), format!("{mem_per_conn:.0}")]);
    t.row(&[
        "budget refusals".into(),
        (w.refused + w.server.budget().refused()).to_string(),
    ]);
    report.table(&t);

    let mut growth = Table::new(
        "memory boundedness: bytes/conn while scaling up",
        &["tick", "live conns", "bytes/conn"],
    );
    for (tick, conns, bpc) in &steady_sample {
        growth.row(&[tick.to_string(), conns.to_string(), format!("{bpc:.0}")]);
    }
    report.table(&growth);

    // The boundedness claim of the issue: per-conn memory must not grow
    // with the connection count. Half-ramp load is lighter per conn (less
    // buffered data), so allow a generous constant factor — what this
    // catches is O(n) growth, which would blow far past 4x.
    if mem_per_conn_half > 0.0 && mem_per_conn > 4.0 * mem_per_conn_half {
        eprintln!(
            "FAIL: bytes/conn grew {:.0} -> {:.0} while conns scaled up",
            mem_per_conn_half, mem_per_conn
        );
        std::process::exit(1);
    }

    report.metric("conn_scale_krps", krps);
    report.metric("conn_scale_mem_per_conn_bytes", mem_per_conn);
    report.metric("conn_scale_p99_us", p99_us);
    report.finish();
}
