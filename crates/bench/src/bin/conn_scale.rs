//! # conn_scale — million-connection scale-out benchmark
//!
//! Drives one server [`TcpStack`] with 100k+ (10k in `--quick`) simulated
//! long-lived clients on a fixed-seed virtual clock and reports the three
//! scale headline metrics the CI gate watches:
//!
//! * `conn_scale_krps` — steady-state completed requests per virtual
//!   second (in thousands);
//! * `conn_scale_mem_per_conn_bytes` — accounted server memory per live
//!   connection (the `ConnBudget` number exported through `neat-obs`);
//! * `conn_scale_p99_us` — p99 request completion latency in virtual µs.
//!
//! The client population is deliberately heterogeneous — the mixes that
//! historically melt per-socket timer lists and linear demux scans:
//!
//! * **steady requesters** (55%): small request, 512 B response, repeat;
//! * **idle keepalivers** (20%): connect once, then only keepalive
//!   probes — pure timer-wheel load;
//! * **slow readers** (10%): ask for 8 KiB and sip it a few hundred
//!   bytes at a time — window backpressure + probe timers;
//! * **churners** (15%): request, close, reconnect — TIME_WAIT wheel
//!   entries, inline reaping, demux insert/remove churn.
//!
//! ## Sharded execution (`--shards N` / `NEAT_SHARDS=N`)
//!
//! Client stacks are partitioned into independent *lanes* (one stack, its
//! connections, and a private RNG stream per lane) that run on real worker
//! threads; the server stack stays on the main thread and consumes client
//! segments in lane order at every exchange. Because each lane's history
//! depends only on its own state plus a lane-ordered segment stream, the
//! run is **byte-identical at any shard count** — CI runs the quick
//! profile at `--shards 1`, `2`, and `4` and diffs the JSON. Worker
//! threads run with the `neat-obs` registry disabled so the embedded
//! metrics snapshot cannot depend on the shard layout either.
//!
//! Everything is deterministic: one seed, virtual time only, no wall
//! clock in any reported number.

use neat_bench::{BenchReport, Table};
use neat_net::TcpHeader;
use neat_tcp::{SockEvent, SocketId, TcpConfig, TcpStack};
use neat_util::{FxHashMap, Rng};
use std::net::Ipv4Addr;
use std::sync::mpsc;

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const PORT: u16 = 80;
const SEED: u64 = 0xC0_FF_EE_00;

/// Virtual tick (event-loop cadence).
const TICK_NS: u64 = 1_000_000; // 1 ms
/// Virtual cost charged per pump round inside a tick (gives sub-tick
/// latency resolution without a per-segment event queue).
const ROUND_NS: u64 = 2_000; // 2 µs

const REQ_LEN: usize = 16;
const RESP_SMALL: usize = 512;
const RESP_BIG: usize = 8 * 1024;

/// Connections per client stack (= per lane). Small enough that even the
/// `--quick` population spans several lanes (so `--shards 2/4` is real
/// parallelism), comfortably under the 16384-port ephemeral span.
const CONNS_PER_STACK: usize = 2_500;

/// An in-flight TCP segment between a lane and the server.
type Seg = (TcpHeader, Vec<u8>);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Role {
    Steady,
    Keepalive,
    SlowReader,
    Churner,
}

fn role_of(global_idx: usize) -> Role {
    match global_idx % 20 {
        0..=10 => Role::Steady,
        11..=14 => Role::Keepalive,
        15..=16 => Role::SlowReader,
        _ => Role::Churner,
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    Connecting,
    Idle,
    /// Waiting for `expect` response bytes, `got` received so far.
    Awaiting {
        expect: usize,
        got: usize,
        sent_at: u64,
    },
    /// Churner linger between connections.
    Disconnected {
        reconnect_at_tick: u64,
    },
}

#[derive(Debug)]
struct Conn {
    id: SocketId,
    role: Role,
    state: ConnState,
    /// Next tick this connection acts (role-specific pacing).
    next_tick: u64,
}

/// IP of lane `i`'s client stack (also the reply-routing key).
fn lane_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 1 + (i / 250) as u8, (i % 250) as u8 + 1)
}

fn lane_of_ip(ip: Ipv4Addr) -> usize {
    let o = ip.octets();
    (o[2] as usize - 1) * 250 + (o[3] as usize - 1)
}

/// One independent shard of the client population: a stack, its
/// connections, a private RNG stream, and private result accumulators.
/// A lane never touches anything outside itself, so lanes can run on any
/// worker thread without changing the history.
struct Lane {
    stack: TcpStack,
    /// socket id -> lane-local conn index (lookup only — never iterated,
    /// so its order can't leak into results).
    by_sock: FxHashMap<SocketId, usize>,
    conns: Vec<Conn>,
    rng: Rng,
    /// First global connection index owned by this lane.
    base: usize,
    /// Number of connections this lane owns.
    size: usize,
    completed: u64,
    completed_steady: u64,
    latencies_ns: Vec<u64>,
    refused: u64,
}

impl Lane {
    fn new(i: usize, size: usize, cfg: TcpConfig) -> Lane {
        Lane {
            stack: TcpStack::new(lane_ip(i), cfg),
            by_sock: FxHashMap::default(),
            conns: Vec::with_capacity(size),
            // Same per-domain stream derivation as the simulator engine:
            // lane streams are independent of the lane->thread layout.
            rng: Rng::seed_from_u64(SEED ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            base: i * CONNS_PER_STACK,
            size,
            completed: 0,
            completed_steady: 0,
            latencies_ns: Vec::new(),
            refused: 0,
        }
    }

    /// Open connection `local` (lane index) on this lane's stack.
    fn open(&mut self, local: usize, now: u64, tick: u64) {
        match self.stack.connect(SERVER_IP, PORT, now) {
            Ok(id) => {
                self.by_sock.insert(id, local);
                let c = Conn {
                    id,
                    role: role_of(self.base + local),
                    state: ConnState::Connecting,
                    next_tick: tick + self.rng.gen_range(1u64..16),
                };
                if local < self.conns.len() {
                    self.conns[local] = c;
                } else {
                    debug_assert_eq!(local, self.conns.len());
                    self.conns.push(c);
                }
            }
            Err(_) => self.refused += 1,
        }
    }

    /// Send one request on conn `local`. Byte 0 selects the response size.
    fn request(&mut self, local: usize, now: u64) {
        let (id, big) = {
            let c = &self.conns[local];
            (c.id, c.role == Role::SlowReader)
        };
        let mut req = [0u8; REQ_LEN];
        req[0] = big as u8;
        if self.stack.send(id, &req).is_ok() {
            self.conns[local].state = ConnState::Awaiting {
                expect: if big { RESP_BIG } else { RESP_SMALL },
                got: 0,
                sent_at: now,
            };
        }
    }

    /// Per-tick phase 1: ramp opens for this lane's slice of the global
    /// `[opened, opened + batch)` range, role-driven actions, then timers.
    fn actions(&mut self, tick: u64, now: u64, opened: usize, batch: usize, steady: bool) {
        let lo = opened.max(self.base);
        let hi = (opened + batch).min(self.base + self.size);
        for idx in lo..hi {
            self.open(idx - self.base, now, tick);
        }

        for local in 0..self.conns.len() {
            if self.conns[local].next_tick > tick {
                continue;
            }
            match (self.conns[local].role, self.conns[local].state) {
                (_, ConnState::Disconnected { reconnect_at_tick }) if tick >= reconnect_at_tick => {
                    self.open(local, now, tick);
                }
                (Role::Steady, ConnState::Idle) | (Role::Churner, ConnState::Idle) => {
                    self.request(local, now);
                    self.conns[local].next_tick = tick + self.rng.gen_range(2u64..12);
                }
                (Role::SlowReader, ConnState::Idle) => {
                    self.request(local, now);
                    self.conns[local].next_tick = tick + 4;
                }
                (Role::SlowReader, ConnState::Awaiting { .. }) => {
                    // Sip a few hundred bytes, then wait again.
                    let id = self.conns[local].id;
                    let mut sip = [0u8; 256];
                    if let Ok(n) = self.stack.recv(id, &mut sip) {
                        self.note_received(local, n, now, tick, steady);
                    }
                    self.conns[local].next_tick = tick + 4;
                }
                (Role::Keepalive, ConnState::Idle) => {
                    // Stays idle on purpose; push the next check far out.
                    self.conns[local].next_tick = tick + 1000;
                }
                _ => {}
            }
        }

        while let Some(t) = self.stack.next_timeout() {
            if t > now {
                break;
            }
            self.stack.on_timer(t);
        }
    }

    /// Pump send half: everything this lane has on the wire.
    fn drain(&mut self, now: u64) -> Vec<Seg> {
        let mut out = Vec::new();
        while let Some((_dst, h, p)) = self.stack.poll_transmit(now) {
            out.push((h, p));
        }
        out
    }

    /// Pump receive half: server segments, in server emission order.
    fn deliver(&mut self, now: u64, segs: Vec<Seg>) {
        for (h, p) in segs {
            self.stack.handle_segment(SERVER_IP, &h, &p, now);
        }
    }

    /// Per-tick phase 3: drain this lane's socket events and readable data.
    fn events(&mut self, tick: u64, now: u64, steady: bool) {
        while let Some(ev) = self.stack.poll_event() {
            let local = match self.by_sock.get(&ev.socket()) {
                Some(i) => *i,
                None => continue,
            };
            // Stale id (the slot was already recycled to a new socket):
            // drop the mapping and ignore the event.
            if self.conns[local].id != ev.socket() {
                self.by_sock.remove(&ev.socket());
                continue;
            }
            match ev {
                SockEvent::Connected(_) if self.conns[local].state == ConnState::Connecting => {
                    self.conns[local].state = ConnState::Idle;
                }
                SockEvent::Connected(_) => {}
                SockEvent::Readable(id) => self.read(local, id, now, tick, steady),
                SockEvent::Aborted(id) | SockEvent::Closed(id) => {
                    // Churners reach here after their active close; anyone
                    // else losing a connection re-opens lazily.
                    if let ConnState::Disconnected { .. } = self.conns[local].state {
                    } else if self.conns[local].role == Role::Churner {
                        self.by_sock.remove(&id);
                        self.conns[local].state = ConnState::Disconnected {
                            reconnect_at_tick: tick + self.rng.gen_range(5u64..20),
                        };
                    }
                }
                _ => {}
            }
        }
    }

    fn read(&mut self, local: usize, id: SocketId, now: u64, tick: u64, steady: bool) {
        // Slow readers sip on their own schedule, not on readiness.
        if self.conns[local].role == Role::SlowReader {
            return;
        }
        let mut buf = [0u8; 2048];
        loop {
            let n = match self.stack.recv(id, &mut buf) {
                Ok(0) => return,
                Ok(n) => n,
                Err(_) => return,
            };
            self.note_received(local, n, now, tick, steady);
            if n < buf.len() {
                return;
            }
        }
    }

    fn note_received(&mut self, local: usize, n: usize, now: u64, tick: u64, steady: bool) {
        if let ConnState::Awaiting {
            expect,
            got,
            sent_at,
        } = self.conns[local].state
        {
            let got = got + n;
            if got >= expect {
                self.completed += 1;
                if steady {
                    self.completed_steady += 1;
                    self.latencies_ns.push(now - sent_at);
                }
                match self.conns[local].role {
                    Role::Churner => {
                        let id = self.conns[local].id;
                        let _ = self.stack.close(id, now);
                        self.by_sock.remove(&id);
                        self.conns[local].state = ConnState::Disconnected {
                            reconnect_at_tick: tick + self.rng.gen_range(5u64..20),
                        };
                    }
                    _ => {
                        self.conns[local].state = ConnState::Idle;
                        self.conns[local].next_tick = tick + self.rng.gen_range(2u64..12);
                    }
                }
            } else {
                self.conns[local].state = ConnState::Awaiting {
                    expect,
                    got,
                    sent_at,
                };
            }
        }
    }
}

/// Worker protocol. Command order per worker is FIFO, which is the only
/// synchronization the phases need: an `Actions` is always fully applied
/// before the `Drain` that follows it on the same channel.
enum Cmd {
    Actions {
        tick: u64,
        now: u64,
        opened: usize,
        batch: usize,
        steady: bool,
    },
    Drain {
        now: u64,
    },
    Deliver {
        now: u64,
        segs: Vec<(usize, Vec<Seg>)>,
    },
    Events {
        tick: u64,
        now: u64,
        steady: bool,
    },
    Finish,
}

enum Reply {
    /// `Drain` response: (lane id, client->server segments), lane-ordered
    /// within this worker.
    Segments(Vec<(usize, Vec<Seg>)>),
    /// `Finish` response: the lanes themselves, back to the main thread.
    Lanes(Vec<(usize, Lane)>),
}

fn worker(mut lanes: Vec<(usize, Lane)>, rx: mpsc::Receiver<Cmd>, tx: mpsc::Sender<Reply>) {
    // Metric handles index the registering thread's registry; see
    // `neat_obs::set_thread_enabled`. Disabling also keeps the report's
    // embedded snapshot independent of the lane->thread layout.
    neat_obs::set_thread_enabled(false);
    for cmd in rx {
        match cmd {
            Cmd::Actions {
                tick,
                now,
                opened,
                batch,
                steady,
            } => {
                for (_, lane) in &mut lanes {
                    lane.actions(tick, now, opened, batch, steady);
                }
            }
            Cmd::Drain { now } => {
                let v = lanes.iter_mut().map(|(i, l)| (*i, l.drain(now))).collect();
                tx.send(Reply::Segments(v)).expect("main gone");
            }
            Cmd::Deliver { now, segs } => {
                for (i, s) in segs {
                    let lane = lanes
                        .iter_mut()
                        .find(|(li, _)| *li == i)
                        .map(|(_, l)| l)
                        .expect("segment for foreign lane");
                    lane.deliver(now, s);
                }
            }
            Cmd::Events { tick, now, steady } => {
                for (_, lane) in &mut lanes {
                    lane.events(tick, now, steady);
                }
            }
            Cmd::Finish => {
                tx.send(Reply::Lanes(lanes)).expect("main gone");
                return;
            }
        }
    }
}

/// The server stack and its request/response logic — main thread only.
struct Server {
    stack: TcpStack,
    listener: SocketId,
    /// Request reassembly: bytes of a partial request seen.
    partial: FxHashMap<SocketId, Vec<u8>>,
    /// Responses that hit a full send buffer: (id, remaining).
    backlog: Vec<(SocketId, usize)>,
}

impl Server {
    fn new() -> Server {
        let cfg = TcpConfig {
            initial_rto_ns: 20_000_000,
            backlog: 4096,
            delayed_ack_ns: 0,
            nagle: false,
            ..TcpConfig::default()
        };
        let mut stack = TcpStack::new(SERVER_IP, cfg);
        let listener = stack.listen(PORT).expect("listen");
        Server {
            stack,
            listener,
            partial: FxHashMap::default(),
            backlog: Vec::new(),
        }
    }

    /// Accept, read requests, write responses; retry the backlogged ones.
    fn work(&mut self, now: u64) {
        while self.stack.acceptable(self.listener) > 0 {
            let _ = self.stack.accept(self.listener);
        }
        while let Some(ev) = self.stack.poll_event() {
            match ev {
                SockEvent::Readable(id) => self.read(id, now),
                SockEvent::PeerClosed(id) => {
                    // Active-close side is the client; finish our half.
                    let _ = self.stack.close(id, now);
                    self.partial.remove(&id);
                }
                _ => {}
            }
        }
        // Retry responses that earlier hit a full send buffer.
        if !self.backlog.is_empty() {
            let mut still = Vec::new();
            for (id, remaining) in std::mem::take(&mut self.backlog) {
                let left = self.send_response(id, remaining);
                if left > 0 {
                    still.push((id, left));
                }
            }
            self.backlog = still;
        }
    }

    fn read(&mut self, id: SocketId, now: u64) {
        let _ = now;
        let mut buf = [0u8; 4096];
        loop {
            let n = match self.stack.recv(id, &mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(_) => break,
            };
            let mut sizes = Vec::new();
            {
                let pending = self.partial.entry(id).or_default();
                pending.extend_from_slice(&buf[..n]);
                while pending.len() >= REQ_LEN {
                    let big = pending[0] != 0;
                    pending.drain(..REQ_LEN);
                    sizes.push(if big { RESP_BIG } else { RESP_SMALL });
                }
            }
            for size in sizes {
                let left = self.send_response(id, size);
                if left > 0 {
                    self.backlog.push((id, left));
                }
            }
            if n < buf.len() {
                break;
            }
        }
        if self.partial.get(&id).map(|p| p.is_empty()).unwrap_or(false) {
            self.partial.remove(&id);
        }
    }

    /// Push up to `size` response bytes; returns bytes still owed.
    fn send_response(&mut self, id: SocketId, size: usize) -> usize {
        const CHUNK: [u8; 1024] = [0x42; 1024];
        let mut left = size;
        while left > 0 {
            let n = left.min(CHUNK.len());
            match self.stack.send(id, &CHUNK[..n]) {
                Ok(sent) => {
                    left -= sent;
                    if sent < n {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        left
    }

    fn timers(&mut self, now: u64) {
        while let Some(t) = self.stack.next_timeout() {
            if t > now {
                break;
            }
            self.stack.on_timer(t);
        }
    }
}

/// Shuttle segments between lanes and server until quiescent, charging
/// `ROUND_NS` per round. The server consumes client segments in lane
/// order every round, so the exchange sequence is independent of how
/// lanes are spread over workers.
fn pump(
    server: &mut Server,
    txs: &[mpsc::Sender<Cmd>],
    rxs: &[mpsc::Receiver<Reply>],
    worker_of: &[usize],
    now: &mut u64,
) {
    let n_lanes = worker_of.len();
    loop {
        for tx in txs {
            tx.send(Cmd::Drain { now: *now }).expect("worker gone");
        }
        let mut by_lane: Vec<Vec<Seg>> = (0..n_lanes).map(|_| Vec::new()).collect();
        for rx in rxs {
            match rx.recv().expect("worker gone") {
                Reply::Segments(v) => {
                    for (i, segs) in v {
                        by_lane[i] = segs;
                    }
                }
                Reply::Lanes(_) => unreachable!("lanes returned mid-run"),
            }
        }
        let mut moved = false;
        for (i, segs) in by_lane.iter().enumerate() {
            let src = lane_ip(i);
            for (h, p) in segs {
                server.stack.handle_segment(src, h, p, *now);
                moved = true;
            }
        }
        server.work(*now);
        // Server replies, routed back by destination IP.
        let mut back: Vec<Vec<Seg>> = (0..n_lanes).map(|_| Vec::new()).collect();
        while let Some((dst, h, p)) = server.stack.poll_transmit(*now) {
            back[lane_of_ip(dst)].push((h, p));
            moved = true;
        }
        let mut per_worker: Vec<Vec<(usize, Vec<Seg>)>> =
            (0..txs.len()).map(|_| Vec::new()).collect();
        for (i, segs) in back.into_iter().enumerate() {
            if !segs.is_empty() {
                per_worker[worker_of[i]].push((i, segs));
            }
        }
        for (w, segs) in per_worker.into_iter().enumerate() {
            if !segs.is_empty() {
                txs[w]
                    .send(Cmd::Deliver { now: *now, segs })
                    .expect("worker gone");
            }
        }
        if !moved {
            break;
        }
        *now += ROUND_NS;
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let i = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[i]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--quick") {
        // Keep the report's `quick` field consistent however we're invoked.
        std::env::set_var("NEAT_BENCH_QUICK", "1");
    }
    let quick = neat_bench::quick();
    let shards_req: usize = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("NEAT_SHARDS").ok())
        .map(|s| s.parse().expect("--shards expects a positive integer"))
        .unwrap_or(1)
        .max(1);

    let n_conns: usize = if quick { 10_000 } else { 100_000 };
    let ramp_ticks: u64 = 50;
    let steady_ticks: u64 = if quick { 150 } else { 250 };
    let total_ticks = ramp_ticks + steady_ticks;
    let warmup_ticks = ramp_ticks + 20;

    let client_cfg = TcpConfig {
        initial_rto_ns: 20_000_000,
        delayed_ack_ns: 0,
        nagle: false,
        // Churners must recycle ports within the run.
        time_wait_ns: 50_000_000,
        // Idle keepalivers exercise the wheel's coarse levels.
        keepalive_ns: 100_000_000,
        ..TcpConfig::default()
    };
    let n_lanes = n_conns.div_ceil(CONNS_PER_STACK);
    let shards = shards_req.min(n_lanes);
    // Lanes are constructed on the main thread, in lane order, so metric
    // *registration* order (and thus the snapshot's key order) is fixed
    // regardless of the shard count.
    let mut lanes: Vec<Option<(usize, Lane)>> = (0..n_lanes)
        .map(|i| {
            let size = CONNS_PER_STACK.min(n_conns - i * CONNS_PER_STACK);
            Some((i, Lane::new(i, size, client_cfg.clone())))
        })
        .collect();
    let worker_of: Vec<usize> = (0..n_lanes).map(|i| i % shards).collect();
    let mut server = Server::new();

    println!("conn_scale: {n_conns} clients over {n_lanes} lanes, {shards} shard worker(s)");
    let wall_start = std::time::Instant::now();

    let per_tick = n_conns.div_ceil(ramp_ticks as usize);
    let mut opened = 0usize;
    let mut now = 0u64;
    let mut mem_per_conn_half = 0.0f64;
    let mut steady_sample: Vec<(u64, usize, f64)> = Vec::new();
    let mut finished: Vec<(usize, Lane)> = Vec::with_capacity(n_lanes);

    std::thread::scope(|s| {
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        for w in 0..shards {
            let (ctx, crx) = mpsc::channel::<Cmd>();
            let (rtx, rrx) = mpsc::channel::<Reply>();
            let mine: Vec<(usize, Lane)> = (0..n_lanes)
                .filter(|i| worker_of[*i] == w)
                .map(|i| lanes[i].take().expect("lane taken twice"))
                .collect();
            s.spawn(move || worker(mine, crx, rtx));
            txs.push(ctx);
            rxs.push(rrx);
        }

        for tick in 0..total_ticks {
            now = now.max(tick * TICK_NS);
            let steady = tick >= warmup_ticks;

            // Ramp: open the next batch of connections (each lane opens
            // its slice of the global range).
            let batch = per_tick.min(n_conns - opened);
            for tx in &txs {
                tx.send(Cmd::Actions {
                    tick,
                    now,
                    opened,
                    batch,
                    steady,
                })
                .expect("worker gone");
            }
            opened += batch;
            server.timers(now);
            pump(&mut server, &txs, &rxs, &worker_of, &mut now);
            for tx in &txs {
                tx.send(Cmd::Events { tick, now, steady })
                    .expect("worker gone");
            }
            pump(&mut server, &txs, &rxs, &worker_of, &mut now);

            if tick == ramp_ticks / 2 {
                mem_per_conn_half = server.stack.budget().bytes_per_conn();
            }
            if steady && (tick - warmup_ticks).is_multiple_of(50) {
                steady_sample.push((
                    tick,
                    server.stack.conn_count(),
                    server.stack.budget().bytes_per_conn(),
                ));
            }
        }

        for tx in &txs {
            tx.send(Cmd::Finish).expect("worker gone");
        }
        for rx in &rxs {
            match rx.recv().expect("worker gone") {
                Reply::Lanes(mut v) => finished.append(&mut v),
                Reply::Segments(_) => unreachable!("drain after finish"),
            }
        }
    });
    finished.sort_by_key(|(i, _)| *i);
    // Wall time is printed, never reported: the JSON must be identical
    // across shard counts.
    println!(
        "conn_scale: simulated {} ms in {:.1}s wall",
        total_ticks * TICK_NS / 1_000_000,
        wall_start.elapsed().as_secs_f64()
    );

    let mut completed = 0u64;
    let mut completed_steady = 0u64;
    let mut refused = 0u64;
    let mut latencies_ns: Vec<u64> = Vec::new();
    for (_, lane) in &finished {
        completed += lane.completed;
        completed_steady += lane.completed_steady;
        refused += lane.refused;
        latencies_ns.extend_from_slice(&lane.latencies_ns);
    }

    // Headline numbers.
    if std::env::var("CONN_SCALE_DEBUG").is_ok() {
        let mut dist = std::collections::BTreeMap::new();
        for id in server.stack.socket_ids() {
            if let Some(st) = server.stack.state(id) {
                *dist.entry(format!("{st:?}")).or_insert(0u64) += 1;
            }
        }
        eprintln!("server socket states: {dist:?}");
        let mut cdist = std::collections::BTreeMap::new();
        for (_, lane) in &finished {
            for id in lane.stack.socket_ids() {
                if let Some(st) = lane.stack.state(id) {
                    *cdist.entry(format!("{st:?}")).or_insert(0u64) += 1;
                }
            }
        }
        eprintln!("client socket states: {cdist:?}");
    }
    server.stack.publish_mem_gauges();
    let steady_secs = (steady_ticks - 20) as f64 * TICK_NS as f64 / 1e9;
    let krps = completed_steady as f64 / steady_secs / 1e3;
    let mem_per_conn = server.stack.budget().bytes_per_conn();
    latencies_ns.sort_unstable();
    let p50_us = percentile(&latencies_ns, 0.50) as f64 / 1e3;
    let p99_us = percentile(&latencies_ns, 0.99) as f64 / 1e3;

    let mut report = BenchReport::new("conn_scale");
    let mut t = Table::new(
        format!("conn_scale: {n_conns} long-lived clients (fixed seed)"),
        &["metric", "value"],
    );
    t.row(&["clients (target)".into(), n_conns.to_string()]);
    t.row(&[
        "server live conns (end)".into(),
        server.stack.conn_count().to_string(),
    ]);
    t.row(&["requests completed".into(), completed.to_string()]);
    t.row(&["steady krps".into(), format!("{krps:.1}")]);
    t.row(&["p50 latency (us)".into(), format!("{p50_us:.1}")]);
    t.row(&["p99 latency (us)".into(), format!("{p99_us:.1}")]);
    t.row(&[
        "bytes/conn @ half ramp".into(),
        format!("{mem_per_conn_half:.0}"),
    ]);
    t.row(&["bytes/conn @ end".into(), format!("{mem_per_conn:.0}")]);
    t.row(&[
        "budget refusals".into(),
        (refused + server.stack.budget().refused()).to_string(),
    ]);
    report.table(&t);

    let mut growth = Table::new(
        "memory boundedness: bytes/conn while scaling up",
        &["tick", "live conns", "bytes/conn"],
    );
    for (tick, conns, bpc) in &steady_sample {
        growth.row(&[tick.to_string(), conns.to_string(), format!("{bpc:.0}")]);
    }
    report.table(&growth);

    // The boundedness claim of the issue: per-conn memory must not grow
    // with the connection count. Half-ramp load is lighter per conn (less
    // buffered data), so allow a generous constant factor — what this
    // catches is O(n) growth, which would blow far past 4x.
    if mem_per_conn_half > 0.0 && mem_per_conn > 4.0 * mem_per_conn_half {
        eprintln!(
            "FAIL: bytes/conn grew {:.0} -> {:.0} while conns scaled up",
            mem_per_conn_half, mem_per_conn
        );
        std::process::exit(1);
    }

    report.metric("conn_scale_krps", krps);
    report.metric("conn_scale_mem_per_conn_bytes", mem_per_conn);
    report.metric("conn_scale_p99_us", p99_us);
    report.finish();
}
