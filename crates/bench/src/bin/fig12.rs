//! **Figure 12** — "12-core AMD - Comparing performance of different
//! configurations stressed by the same workload": one request per
//! connection (heavy connection churn), five stack configurations, six
//! workload points: 1 server with 8/16/32/64 concurrent connections, 2
//! servers with 32, and 4 servers with 64.
//!
//! Paper shape: at the 8-connection point a single multi-component replica
//! beats two ("lightly loaded components often sleep, which introduces
//! latency"); at higher loads more replicas win.

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_bench::{krps, windows, BenchReport, Table};

struct Point {
    servers: usize,
    total_conns: usize,
}

fn measure(cfg: NeatConfig, p: &Point) -> f64 {
    let mut spec = TestbedSpec::amd(cfg, p.servers);
    // Spread the total connection count over enough client processes.
    let clients = p.total_conns.min(8);
    spec.clients = clients;
    spec.workload = Workload {
        conns_per_client: p.total_conns.div_ceil(clients),
        requests_per_conn: 1, // the modified single-request test
        ..Workload::default()
    };
    let (warm, win) = windows();
    let mut tb = Testbed::build(spec);
    tb.measure(warm, win).krps
}

fn main() {
    let points = [
        Point {
            servers: 1,
            total_conns: 8,
        },
        Point {
            servers: 1,
            total_conns: 16,
        },
        Point {
            servers: 1,
            total_conns: 32,
        },
        Point {
            servers: 1,
            total_conns: 64,
        },
        Point {
            servers: 2,
            total_conns: 32,
        },
        Point {
            servers: 4,
            total_conns: 64,
        },
    ];
    let configs: &[(&str, NeatConfig)] = &[
        ("NEaT 1x", NeatConfig::single(1)),
        ("NEaT 2x", NeatConfig::single(2)),
        ("NEaT 3x", NeatConfig::single(3)),
        ("Multi 1x", NeatConfig::multi(1)),
        ("Multi 2x", NeatConfig::multi(2)),
    ];
    let mut t = Table::new(
        "Figure 12 — AMD: 1-request/connection workload, request rate (krps)",
        &["config", "8", "16", "32", "64", "2srv,32", "4srv,64"],
    );
    let mut report = BenchReport::new("fig12");
    for (name, cfg) in configs {
        let mut cells = vec![name.to_string()];
        for p in &points {
            let v = measure(cfg.clone(), p);
            if *name == "NEaT 3x" && p.servers == 1 && p.total_conns == 64 {
                report.metric("neat3_conns64_krps", v);
            }
            cells.push(krps(v));
        }
        t.row(&cells);
    }
    report.table(&t);
    report.finish();
    println!(
        "Paper shape: at 8 connections Multi 1x beats Multi 2x (sleep/wake\n\
         latency dominates lightly-loaded replicas); replicas win at high load."
    );
}
