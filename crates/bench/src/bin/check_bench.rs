//! CI performance-regression gate.
//!
//! Compares the headline metrics in `results/BENCH_<name>.json` (written
//! by a `run_all --quick` pass) against the committed, tolerance-annotated
//! baselines in `baselines/bench_baselines.json`, and exits non-zero when
//! any metric drifts out of tolerance — so a perf regression (or an
//! accidental determinism break) fails the build rather than landing
//! silently.
//!
//! ```text
//! check_bench                     # compare, exit 1 on drift
//! check_bench --write             # regenerate baselines from results/
//! check_bench --write-baselines   # same (long spelling)
//! ```
//!
//! `scripts/regen_baselines.sh` wraps the full regenerate flow (quick
//! bench pass + `--write`).
//!
//! Baseline format — per bench, per metric:
//!
//! ```json
//! { "benches": { "table1": { "best_krps": { "value": 230.1, "rel_tol": 0.1 } } } }
//! ```
//!
//! A metric passes when `|measured - value| <= rel_tol * |value| + abs_tol`
//! (`abs_tol` optional, default 0). The quick suite is deterministic with
//! fixed seeds, so tolerances only need to absorb intentional calibration
//! shifts, not run-to-run noise.

use neat_util::Json;

const BASELINES: &str = "baselines/bench_baselines.json";
const DEFAULT_REL_TOL: f64 = 0.10;

/// Per-metric tolerance overrides applied by `--write`: `(key, rel, abs)`.
///
/// The quick suite's virtual-time metrics are deterministic and get the
/// tight default, but wall-clock-derived metrics (parallel speedup,
/// events/sec) measure the *host* — baselines may be written on a 1-CPU
/// container while CI runs 4-vCPU runners — so they carry a wide band
/// here and are instead gated semantically inside the bench itself
/// (par_scale fails below 1.5x speedup on hosts with >= 4 CPUs).
const WALL_CLOCK_TOLS: &[(&str, f64, f64)] = &[
    ("sim.parallel_speedup", 3.0, 2.0),
    ("par_scale_speedup_2x", 3.0, 2.0),
    ("par_scale_speedup_4x", 3.0, 2.0),
    ("par_scale_speedup_8x", 3.0, 2.0),
    ("par_scale_serial_meps", 3.0, 5.0),
];

fn tolerance_for(key: &str) -> (f64, f64) {
    WALL_CLOCK_TOLS
        .iter()
        .find(|(k, _, _)| *k == key)
        .map(|(_, rel, abs)| (*rel, *abs))
        .unwrap_or((DEFAULT_REL_TOL, 0.0))
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Headline metrics of one results file, in file order.
fn result_metrics(bench: &str) -> Result<Vec<(String, f64)>, String> {
    let path = format!("results/BENCH_{bench}.json");
    let json = load(&path)?;
    let metrics = json
        .get("metrics")
        .and_then(|m| m.as_object())
        .ok_or_else(|| format!("{path}: no \"metrics\" object"))?;
    Ok(metrics
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|f| (k.clone(), f)))
        .collect())
}

fn write_baselines(benches: &[&str]) -> Result<(), String> {
    let mut out = Json::object();
    for bench in benches {
        let mut obj = Json::object();
        for (k, v) in result_metrics(bench)? {
            let (rel, abs) = tolerance_for(&k);
            let mut spec = Json::object().field("value", v).field("rel_tol", rel);
            if abs > 0.0 {
                spec = spec.field("abs_tol", abs);
            }
            obj = obj.field(k, spec);
        }
        out = out.field(*bench, obj);
    }
    let json = Json::object().field("benches", out);
    std::fs::create_dir_all("baselines").map_err(|e| e.to_string())?;
    std::fs::write(BASELINES, json.render()).map_err(|e| e.to_string())?;
    println!(
        "wrote {BASELINES} from results/ ({} benches)",
        benches.len()
    );
    Ok(())
}

fn check() -> Result<Vec<String>, String> {
    let baselines = load(BASELINES)?;
    let benches = baselines
        .get("benches")
        .and_then(|b| b.as_object())
        .ok_or_else(|| format!("{BASELINES}: no \"benches\" object"))?;
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for (bench, metrics) in benches {
        let measured = match result_metrics(bench) {
            Ok(m) => m,
            Err(e) => {
                failures.push(format!("{bench}: missing results ({e})"));
                continue;
            }
        };
        let Some(metrics) = metrics.as_object() else {
            return Err(format!("{BASELINES}: {bench} is not an object"));
        };
        for (key, spec) in metrics {
            let Some(value) = spec.get("value").and_then(|v| v.as_f64()) else {
                return Err(format!("{BASELINES}: {bench}.{key} has no value"));
            };
            let rel = spec
                .get("rel_tol")
                .and_then(|v| v.as_f64())
                .unwrap_or(DEFAULT_REL_TOL);
            let abs = spec.get("abs_tol").and_then(|v| v.as_f64()).unwrap_or(0.0);
            let Some(&(_, got)) = measured.iter().find(|(k, _)| k == key) else {
                failures.push(format!("{bench}.{key}: metric missing from results"));
                continue;
            };
            checked += 1;
            let allowed = rel * value.abs() + abs;
            let drift = (got - value).abs();
            if drift > allowed {
                failures.push(format!(
                    "{bench}.{key}: {got:.3} vs baseline {value:.3} \
                     (drift {drift:.3} > allowed {allowed:.3})"
                ));
            }
        }
    }
    println!("check_bench: {checked} metrics compared against {BASELINES}");
    Ok(failures)
}

fn main() {
    let write = std::env::args().any(|a| a == "--write-baselines" || a == "--write");
    if write {
        // Every results file present becomes a baseline entry.
        let mut benches: Vec<String> = std::fs::read_dir("results")
            .map(|rd| {
                rd.filter_map(|e| {
                    let name = e.ok()?.file_name().into_string().ok()?;
                    Some(
                        name.strip_prefix("BENCH_")?
                            .strip_suffix(".json")?
                            .to_string(),
                    )
                })
                .collect()
            })
            .unwrap_or_default();
        benches.sort();
        let refs: Vec<&str> = benches.iter().map(|s| s.as_str()).collect();
        if refs.is_empty() {
            eprintln!("no results/BENCH_*.json found — run run_all first");
            std::process::exit(1);
        }
        if let Err(e) = write_baselines(&refs) {
            eprintln!("check_bench: {e}");
            std::process::exit(1);
        }
        return;
    }
    match check() {
        Ok(failures) if failures.is_empty() => println!("check_bench: all metrics in tolerance"),
        Ok(failures) => {
            for f in &failures {
                eprintln!("FAIL {f}");
            }
            eprintln!("check_bench: {} metric(s) out of tolerance", failures.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("check_bench: {e}");
            std::process::exit(1);
        }
    }
}
