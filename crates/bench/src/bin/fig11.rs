//! **Figure 11** — "Xeon - Scaling the single-component stack": NEaT
//! 1x/2x/4x with and without hyper-threading; the paper's NEaT 4x HT
//! sustains 372 krps vs 328 krps for the best Linux on the same machine
//! (+13.4%). Pass `--layouts` for the Figure 10 diagram.

use neat::config::NeatConfig;
use neat_apps::scenario::{
    MonoTestbed, MonoTestbedSpec, PlacementPlan, Testbed, TestbedSpec, Workload,
};
use neat_bench::{krps, windows, BenchReport, Table};

fn load() -> Workload {
    Workload {
        conns_per_client: 24,
        requests_per_conn: 100,
        ..Workload::default()
    }
}

fn measure(replicas: usize, webs: usize, plan: PlacementPlan) -> Option<f64> {
    let mut spec = TestbedSpec::xeon(NeatConfig::single(replicas), webs);
    spec.placement = plan;
    spec.workload = load();
    let (warm, win) = windows();
    std::panic::catch_unwind(move || {
        let mut tb = Testbed::build(spec);
        tb.measure(warm, win).krps
    })
    .ok()
}

fn linux_reference() -> f64 {
    let mut spec = MonoTestbedSpec::xeon(neat_monolith::MonoTuning::best());
    spec.workload = Workload {
        conns_per_client: 48,
        ..load()
    };
    let (warm, win) = windows();
    let mut tb = MonoTestbed::build(spec);
    tb.measure(warm, win).krps
}

fn main() {
    if std::env::args().any(|a| a == "--layouts") {
        println!(
            r#"
Figure 10 — best single-component Xeon configuration (fully exploiting HT):
  core0: [NIC Drv | SYSCALL]  core1: [OS | Web 9]
  core2: [NEaT 1 | NEaT 2]    core3: [NEaT 3 | NEaT 4]
  cores4..7: [Web 1..8] (both threads each)
"#
        );
    }
    let instances = [1usize, 2, 3, 4, 5, 8, 9];
    let mut t = Table::new(
        "Figure 11 — Xeon: single-component scaling, request rate (krps)",
        &["config", "1", "2", "3", "4", "5", "8", "9"],
    );
    let curves: &[(&str, usize, PlacementPlan)] = &[
        ("NEaT 1x", 1, PlacementPlan::Dedicated),
        ("NEaT 1x HT", 1, PlacementPlan::HtColocated),
        ("NEaT 2x", 2, PlacementPlan::Dedicated),
        ("NEaT 2x HT", 2, PlacementPlan::HtColocated),
        ("NEaT 4x HT", 4, PlacementPlan::HtColocated),
    ];
    let mut report = BenchReport::new("fig11");
    for (name, replicas, plan) in curves {
        let mut cells = vec![name.to_string()];
        for webs in instances {
            match measure(*replicas, webs, *plan) {
                Some(v) => {
                    if *name == "NEaT 4x HT" && webs == 9 {
                        report.metric("neat4ht_webs9_krps", v);
                    }
                    cells.push(krps(v));
                }
                None => cells.push("-".into()),
            }
        }
        t.row(&cells);
    }
    report.table(&t);
    let linux = linux_reference();
    report.metric("linux_best_krps", linux);
    let mut t2 = Table::new(
        "Figure 11 reference — best Linux on the Xeon (16 lighttpd / 16 threads)",
        &["system", "paper krps", "measured krps"],
    );
    t2.row(&["Linux best".into(), "328.0".into(), krps(linux)]);
    t2.row(&["NEaT 4x HT".into(), "372.0".into(), "see fig11 row".into()]);
    report.table(&t2);
    report.finish();
    println!("Paper: NEaT 4x HT = 372 krps, +13.4% over Linux's 328 krps.");
}
