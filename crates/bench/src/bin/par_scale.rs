//! par_scale — wall-clock scaling of the sharded parallel simulation
//! engine, with the bit-identical-history contract enforced on every run.
//!
//! Builds a multi-machine topology with heavy machine-local message load
//! plus cross-machine ring traffic at the declared link latency, runs the
//! exact same fixed-seed workload on the serial engine and on 2/4/8 shard
//! workers, asserts the histories are identical (event counts and every
//! hardware thread's busy-time accounting must match to the nanosecond),
//! and reports `sim.parallel_speedup` — the headline metric of ROADMAP
//! item 3 ("run the full conn_scale bench in CI-tolerable time").
//!
//! The speedup gate (≥ 1.5× at 4 shards) is enforced only when the host
//! actually has ≥ 4 CPUs; on smaller hosts the number is reported but not
//! gated, since conservative-window barriers on an oversubscribed host
//! measure the scheduler, not the engine.

use neat_bench::{quick, BenchReport, Table};
use neat_sim::{Ctx, Event, MachineSpec, ProcId, Process, Sim, SimConfig, Time};
use std::time::Instant;

/// Declared cross-machine link latency: the parallel lookahead. Generous
/// (10 µs) so each conservative window carries plenty of local work.
const LINK_NS: u64 = 10_000;

#[derive(Debug)]
enum Msg {
    /// Machine-local pump traffic (bounce counter).
    Work(u64),
    /// Cross-machine ring traffic.
    Cross(u64),
}

/// One side of a machine-local pump pair: bounces Work against its peer,
/// charging cycles, and every `cross_every` bounces fires a Cross message
/// to the next machine in the ring.
struct PumpA {
    peer: ProcId,
    cross: ProcId,
    cross_every: u64,
    bounces: u64,
}

impl Process<Msg> for PumpA {
    fn name(&self) -> String {
        "pump_a".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            Event::Start => ctx.send(self.peer, Msg::Work(0)),
            Event::Message {
                msg: Msg::Work(n), ..
            } => {
                ctx.charge(1_500);
                self.bounces += 1;
                if self.bounces.is_multiple_of(self.cross_every) {
                    ctx.send_delayed(self.cross, Msg::Cross(n), Time(LINK_NS));
                }
                ctx.send(self.peer, Msg::Work(n + 1));
            }
            _ => {}
        }
    }
}

/// The other side: echoes Work back with RNG-jittered processing cost
/// (exercises the per-machine RNG streams under sharding).
struct PumpB;

impl Process<Msg> for PumpB {
    fn name(&self) -> String {
        "pump_b".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        if let Event::Message {
            from,
            msg: Msg::Work(n),
        } = ev
        {
            let cost = ctx.rng().gen_range(2_000u64..6_000);
            ctx.charge(cost);
            ctx.send(from, Msg::Work(n));
        }
    }
}

/// Ring receiver for cross-machine traffic.
struct CrossSink;

impl Process<Msg> for CrossSink {
    fn name(&self) -> String {
        "cross_sink".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        if let Event::Message {
            msg: Msg::Cross(n), ..
        } = ev
        {
            ctx.charge(800 + (n & 0x3f));
        }
    }
}

/// Deterministic pid of the `n`-th process spawned on machine `mach`
/// (pids are machine-partitioned: `(machine+1) << 40 | n`).
fn pid_on(mach: usize, n: u64) -> ProcId {
    ProcId(((mach as u64 + 1) << 40) | n)
}

fn build(machines: usize, pairs: usize) -> Sim<Msg> {
    let mut sim = Sim::new(SimConfig {
        seed: 0x9A55_CAFE,
        link_latency_ns: LINK_NS,
        ..SimConfig::default()
    });
    let ids: Vec<_> = (0..machines)
        .map(|_| sim.add_machine(MachineSpec::amd_opteron_6168()))
        .collect();
    for (i, &m) in ids.iter().enumerate() {
        // Spawn order fixes pids: sink is pid 1, then A/B pairs (2,3),
        // (4,5), ... The ring target is the *next* machine's sink.
        let sink = sim.spawn(sim.hw_thread(m, 0, 0), Box::new(CrossSink));
        assert_eq!(sink, pid_on(i, 1));
        let cross = pid_on((i + 1) % machines, 1);
        for j in 0..pairs {
            let core_a = (1 + 2 * j) as u32;
            let core_b = (2 + 2 * j) as u32;
            let a = sim.spawn(
                sim.hw_thread(m, core_a, 0),
                Box::new(PumpA {
                    peer: pid_on(i, 3 + 2 * j as u64),
                    cross,
                    cross_every: 32,
                    bounces: 0,
                }),
            );
            let b = sim.spawn(sim.hw_thread(m, core_b, 0), Box::new(PumpB));
            assert_eq!(a, pid_on(i, 2 + 2 * j as u64));
            assert_eq!(b, pid_on(i, 3 + 2 * j as u64));
        }
    }
    sim
}

/// Everything observable about a finished run: event totals plus every
/// hardware thread's accounting, nanosecond-exact.
fn fingerprint(sim: &Sim<Msg>, dispatched: u64) -> (u64, u64, u64, u64) {
    let mut busy = 0u64;
    let mut events = 0u64;
    for t in 0..sim.num_hw_threads() {
        let st = sim.thread_stats(neat_sim::HwThreadId(t));
        busy = busy.wrapping_mul(31).wrapping_add(st.busy_ns);
        events = events.wrapping_mul(31).wrapping_add(st.events);
    }
    (dispatched, sim.now().as_nanos(), busy, events)
}

struct RunResult {
    wall: f64,
    fp: (u64, u64, u64, u64),
    windows: u64,
    handoffs: u64,
    imbalance: f64,
}

fn run(machines: usize, pairs: usize, horizon: Time, shards: usize) -> RunResult {
    let mut sim = build(machines, pairs);
    let t0 = Instant::now();
    let dispatched = if shards == 0 {
        sim.run_until(horizon)
    } else {
        sim.run_sharded(horizon, shards)
    };
    let wall = t0.elapsed().as_secs_f64();
    let ps = sim.par_stats().clone();
    RunResult {
        wall,
        fp: fingerprint(&sim, dispatched),
        windows: ps.windows,
        handoffs: ps.handoffs,
        imbalance: if shards > 1 { ps.imbalance() } else { 1.0 },
    }
}

fn main() {
    let quick = quick();
    let machines = if quick { 4 } else { 8 };
    let pairs = 4usize;
    let horizon = if quick {
        Time::from_millis(25)
    } else {
        Time::from_millis(60)
    };
    let shard_counts: &[usize] = if quick { &[2, 4] } else { &[2, 4, 8] };

    println!(
        "par_scale: {machines} machines x {pairs} pump pairs, horizon {} ms, lookahead {} ns",
        horizon.as_nanos() / 1_000_000,
        neat_sim::calibration::CHANNEL_LATENCY.as_nanos() + LINK_NS,
    );

    let serial = run(machines, pairs, horizon, 0);
    let mut table = Table::new(
        "Parallel engine scaling (identical fixed-seed history per row)",
        &[
            "mode",
            "wall_ms",
            "events",
            "windows",
            "handoffs",
            "speedup",
            "imbalance",
        ],
    );
    table.row(&[
        "serial".into(),
        format!("{:.1}", serial.wall * 1e3),
        serial.fp.0.to_string(),
        "-".into(),
        "-".into(),
        "1.00".into(),
        "-".into(),
    ]);

    let mut report = BenchReport::new("par_scale");
    let mut speedup4 = 0.0f64;
    let mut diverged = false;
    for &s in shard_counts {
        let r = run(machines, pairs, horizon, s);
        if r.fp != serial.fp {
            eprintln!(
                "FAIL par_scale: {s}-shard history diverged from serial \
                 (serial {:?}, sharded {:?})",
                serial.fp, r.fp
            );
            diverged = true;
        }
        let speedup = serial.wall / r.wall;
        if s == 4 {
            speedup4 = speedup;
        }
        table.row(&[
            format!("{s} shards"),
            format!("{:.1}", r.wall * 1e3),
            r.fp.0.to_string(),
            r.windows.to_string(),
            r.handoffs.to_string(),
            format!("{speedup:.2}"),
            format!("{:.2}", r.imbalance),
        ]);
        report.metric(format!("par_scale_speedup_{s}x"), speedup);
    }
    report.table(&table);

    // Export engine gauges (sim.par.* from the last sharded run lives in
    // its own Sim; re-run the 4-shard config to leave its obs state as the
    // snapshot) and the headline speedup.
    let mut sim = build(machines, pairs);
    sim.run_sharded(horizon, 4);
    sim.export_obs();
    neat_obs::gauge_set("sim.parallel_speedup", speedup4);

    report.metric("sim.parallel_speedup", speedup4);
    report.metric("par_scale_events", serial.fp.0 as f64);
    report.metric(
        "par_scale_serial_meps",
        serial.fp.0 as f64 / serial.wall / 1e6,
    );
    report.finish();

    if diverged {
        std::process::exit(1);
    }
    // The speedup acceptance gate: only meaningful with real parallelism
    // available (CI runners have 4 vCPUs; tiny containers report < 4).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 4 && speedup4 < 1.5 {
        eprintln!(
            "FAIL par_scale: sim.parallel_speedup {speedup4:.2} < 1.5 at 4 shards \
             on a {cores}-CPU host"
        );
        std::process::exit(1);
    }
    println!(
        "par_scale: speedup at 4 shards = {speedup4:.2}x on {cores} host CPUs \
         (gate {})",
        if cores >= 4 {
            "enforced"
        } else {
            "informational"
        }
    );
}
