//! **Figure 13** — "Expected fraction of state preserved after a failure
//! vs max throughput across network stack setups" (Xeon).
//!
//! For each configuration we (a) measure its peak request rate and (b)
//! compute the expected fraction of TCP state preserved after one
//! uniformly-placed code fault, using the real component code sizes of
//! this repository (§6.6's methodology). Both axes improve with the number
//! of replicas — the paper's "reliability and scalability coexist" point.

use neat::config::{NeatConfig, StackMode};
use neat::fault::CodeSizes;
use neat::reliability::expected_state_preserved;
use neat_apps::scenario::{PlacementPlan, Testbed, TestbedSpec, Workload};
use neat_bench::{krps, windows, BenchReport, Table};

struct Config {
    label: &'static str,
    cfg: NeatConfig,
    plan: PlacementPlan,
    webs: usize,
    cores: u32,
    threads: u32,
}

fn peak(cfg: &Config) -> Option<f64> {
    let mut spec = TestbedSpec::xeon(cfg.cfg.clone(), cfg.webs);
    spec.placement = cfg.plan;
    spec.workload = Workload {
        conns_per_client: 24,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let (warm, win) = windows();
    std::panic::catch_unwind(move || {
        let mut tb = Testbed::build(spec);
        tb.measure(warm, win).krps
    })
    .ok()
}

fn main() {
    let sizes = CodeSizes::measured();
    let configs = [
        Config {
            label: "NEaT 1x",
            cfg: NeatConfig::single(1),
            plan: PlacementPlan::Dedicated,
            webs: 4,
            cores: 1,
            threads: 1,
        },
        Config {
            label: "NEaT 2x",
            cfg: NeatConfig::single(2),
            plan: PlacementPlan::Dedicated,
            webs: 5,
            cores: 2,
            threads: 2,
        },
        Config {
            label: "NEaT 3x",
            cfg: NeatConfig::single(3),
            plan: PlacementPlan::HtColocated,
            webs: 8,
            cores: 3,
            threads: 3,
        },
        Config {
            label: "NEaT 4x HT",
            cfg: NeatConfig::single(4),
            plan: PlacementPlan::HtColocated,
            webs: 9,
            cores: 2,
            threads: 4,
        },
        Config {
            label: "Multi 1x",
            cfg: NeatConfig::multi(1),
            plan: PlacementPlan::Dedicated,
            webs: 4,
            cores: 2,
            threads: 2,
        },
        Config {
            label: "Multi 2x",
            cfg: NeatConfig::multi(2),
            plan: PlacementPlan::Dedicated,
            webs: 4,
            cores: 4,
            threads: 4,
        },
        Config {
            label: "Multi 2x HT",
            cfg: NeatConfig::multi(2),
            plan: PlacementPlan::HtColocated,
            webs: 8,
            cores: 2,
            threads: 4,
        },
    ];
    let mut t = Table::new(
        "Figure 13 — expected % of state preserved after a failure vs max throughput (Xeon)",
        &[
            "config",
            "stack cores",
            "threads",
            "max krps",
            "state preserved",
        ],
    );
    let mut report = BenchReport::new("fig13");
    for c in &configs {
        let preserved = expected_state_preserved(
            &sizes,
            match c.cfg.mode {
                StackMode::Single => StackMode::Single,
                StackMode::Multi => StackMode::Multi,
            },
            c.cfg.replicas,
        );
        let max = peak(c);
        match c.label {
            "NEaT 1x" => {
                if let Some(v) = max {
                    report.metric("neat1_max_krps", v);
                }
            }
            "Multi 2x" => report.metric("multi2_state_pct", preserved * 100.0),
            _ => {}
        }
        t.row(&[
            c.label.into(),
            c.cores.to_string(),
            c.threads.to_string(),
            max.map(krps).unwrap_or_else(|| "-".into()),
            format!("{:.1}%", preserved * 100.0),
        ]);
    }
    report.table(&t);
    report.finish();
    println!(
        "Paper shape: performance and reliability both increase with the\n\
         number of replicas; multi-component preserves more state than\n\
         single-component at equal replica counts (finer fault isolation)."
    );
}
