//! `cc_compare` — fixed-seed head-to-head of the four congestion
//! controllers behind the event-driven CC API (Reno, CUBIC, BBR-style,
//! DCTCP-style) on the standard ablation topology (NEaT 2x, AMD, 4 web
//! instances).
//!
//! The controllers are selected **per socket** via
//! `SockOpt::CongestionAlgo`, exercising the whole option plumbing
//! (client library → replica → stack → socket) rather than the stack-wide
//! `TcpConfig::congestion` default the congestion ablation uses. The
//! headline `bbr_krps` / `dctcp_krps` metrics gate the new controllers in
//! CI; `reno_krps` / `cubic_krps` pin the ported ones.

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_apps::FileStore;
use neat_bench::{windows, BenchReport, Table};
use neat_tcp::{CongestionAlgo, SockOpt};

fn main() {
    let mut report = BenchReport::new("cc_compare");
    let mut t = Table::new(
        "Congestion-controller comparison (per-socket SockOpt, NEaT 2x, AMD)",
        &["algorithm", "krps", "MB/s", "mean latency", "conn errors"],
    );
    for (algo, name, key) in [
        (CongestionAlgo::Reno, "Reno", "reno_krps"),
        (CongestionAlgo::Cubic, "CUBIC", "cubic_krps"),
        (CongestionAlgo::Bbr, "BBR", "bbr_krps"),
        (CongestionAlgo::Dctcp, "DCTCP", "dctcp_krps"),
    ] {
        let mut spec = TestbedSpec::amd(NeatConfig::single(2), 4);
        // Multi-segment responses (100 KB) so the controllers' window and
        // pacing decisions actually shape the transfer — on the 20-byte
        // default every algorithm is indistinguishable by construction.
        spec.files = FileStore::size_sweep(&[100_000]);
        spec.workload = Workload {
            conns_per_client: 16,
            requests_per_conn: 100,
            path: "/file100000".into(),
            ..Workload::default()
        };
        spec.sock_opts = vec![SockOpt::CongestionAlgo(algo)];
        let (warm, win) = windows();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(warm, win);
        report.metric(key, r.krps);
        t.row(&[
            name.into(),
            format!("{:.1}", r.krps),
            format!("{:.1}", r.mbps),
            format!("{}", r.mean_latency),
            tb.total_errors().to_string(),
        ]);
    }
    report.table(&t);
    report.finish();
}
