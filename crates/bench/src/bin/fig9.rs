//! **Figure 9** — "Xeon - Scaling the multi-component stack": Multi 1x,
//! Multi 2x, and Multi 2x HT on the 8-core/16-thread Xeon; the paper's
//! curve peaks at 322 krps with 8 instances.
//!
//! Pass `--layouts` to print the Figure 8 colocation diagrams.

use neat::config::NeatConfig;
use neat_apps::scenario::{PlacementPlan, Testbed, TestbedSpec, Workload};
use neat_bench::{krps, windows, BenchReport, Table};

fn measure(cfg: NeatConfig, webs: usize, plan: PlacementPlan) -> Option<f64> {
    let mut spec = TestbedSpec::xeon(cfg, webs);
    spec.placement = plan;
    spec.workload = Workload {
        conns_per_client: 24,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let (warm, win) = windows();
    let built = std::panic::catch_unwind(move || {
        let mut tb = Testbed::build(spec);
        tb.measure(warm, win).krps
    });
    built.ok()
}

fn print_layouts() {
    println!(
        r#"
Figure 8(b) — colocation with hyper-threading (2 threads/core):
  core0: [NIC Drv | SYSCALL]   core1: [OS | Web]   cores2..: stack + webs
Figure 8(c) — Multi 2x HT: TCP1+TCP2 share one core's threads, IP1+IP2
  another's ("enforcing this policy for both TCP and IP replicas").
"#
    );
}

fn main() {
    if std::env::args().any(|a| a == "--layouts") {
        print_layouts();
    }
    let instances = [1usize, 2, 3, 4, 6, 8];
    let mut t = Table::new(
        "Figure 9 — Xeon: multi-component scaling, request rate (krps)",
        &["config", "1", "2", "3", "4", "6", "8"],
    );
    let curves: &[(&str, NeatConfig, PlacementPlan)] = &[
        ("Multi 1x", NeatConfig::multi(1), PlacementPlan::Dedicated),
        ("Multi 2x", NeatConfig::multi(2), PlacementPlan::Dedicated),
        (
            "Multi 2x HT",
            NeatConfig::multi(2),
            PlacementPlan::HtColocated,
        ),
    ];
    let mut report = BenchReport::new("fig9");
    for (name, cfg, plan) in curves {
        let mut cells = vec![name.to_string()];
        for webs in instances {
            match measure(cfg.clone(), webs, *plan) {
                Some(v) => {
                    if *name == "Multi 2x HT" && webs == 8 {
                        report.metric("multi2ht_webs8_krps", v);
                    }
                    cells.push(krps(v));
                }
                None => cells.push("-".into()), // layout doesn't fit
            }
        }
        t.row(&cells);
    }
    report.table(&t);
    report.finish();
    println!(
        "Paper shape: throughput peaks at 4 instances per replica capacity;\n\
         HT colocation reaches ~322 krps at 8 instances."
    );
}
