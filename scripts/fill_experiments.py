#!/usr/bin/env python3
"""Inject the measured tables from results/ into EXPERIMENTS.md at the
<!-- FILLED-FROM-RESULTS --> marker, with paper-reference annotations.

Each bench also emits a unified results/BENCH_<name>.json report (tables +
headline metrics + an observability snapshot); when present, its headline
metrics are rendered beneath the tables."""

import json
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
EXP = ROOT / "EXPERIMENTS.md"

ORDER = [
    ("table1", "Paper: defaults 184.118 | +sched/eth/irqAff/rxAff 186.667 | +serv 223.987 krps."),
    ("fig4_5", "Paper: request rate flat for tiny files; 10 Gb/s saturates past ~7 KB; latency rises sharply between 100 KB and 1 MB."),
    ("fig7", "Paper: Multi 1x linear to 4 instances then saturated; Multi 2x to 5; NEaT 3x scales to 6 instances at 302 krps (Linux best: 224)."),
    ("fig9", "Paper: multi-component throughput peaks at 4 instances per replica; HT colocation reaches 322 krps at 8 instances."),
    ("fig11", "Paper: NEaT 4x HT sustains 372 krps, +13.4% over the best Linux (328 krps, 16 lighttpd on 16 threads)."),
    ("fig12", "Paper: single-replica multi-component beats two replicas at 8 connections (sleep latency); replicas win at higher loads."),
    ("table2", "Paper: load 6/60/88/97% -> kernel 33.3/14.2/5.4/0.1%, polling 51.8/27.9/19.7/7.4%, at 3/45/90/242 krps."),
    ("table3", "Paper: 53.8% fully transparent recovery, 46.2% TCP connections lost, over 100 failing runs."),
    ("failover", "Not in the paper as a table: §3.6's replication argument made concrete — buddy-replica flow replication turns TCP crashes transparent; the same transfer path live-migrates flows on scale-down."),
    ("fig13", "Paper: both axes improve with replicas; multi-component preserves more state than single at equal replica count."),
    ("security", "Paper (§3.8, qualitative): consecutive connections handled by processes with unpredictably different layouts."),
    ("ablations", "Not in the paper: isolating the design choices (tracking filters, TSO, congestion control, wake latency, \u00a73.4 batching + zero-copy)."),
]

def headline_metrics(name):
    """The bench's gated headline metrics, from its BENCH_<name>.json."""
    f = RESULTS / f"BENCH_{name}.json"
    if not f.exists():
        return None
    try:
        report = json.loads(f.read_text())
    except json.JSONDecodeError:
        return None
    metrics = report.get("metrics") or {}
    if not metrics:
        return None
    pairs = ", ".join(f"`{k}` = {v:g}" for k, v in metrics.items())
    return f"*Headline metrics (CI-gated):* {pairs}\n"


def main():
    parts = []
    for name, paper_note in ORDER:
        f = RESULTS / f"{name}.txt"
        if not f.exists():
            continue
        parts.append(f"*Paper reference:* {paper_note}\n")
        parts.append(f.read_text().strip() + "\n")
        metrics = headline_metrics(name)
        if metrics:
            parts.append(metrics)
    sections = sum(1 for p in parts if p.startswith("*Paper reference:*"))
    body = "\n".join(parts)
    text = EXP.read_text()
    marker = "<!-- FILLED-FROM-RESULTS -->"
    assert marker in text, "marker missing"
    EXP.write_text(text.replace(marker, body))
    print(f"wrote {sections} experiment sections into EXPERIMENTS.md")

if __name__ == "__main__":
    main()
