#!/bin/sh
# Regenerate baselines/bench_baselines.json from a fresh deterministic
# quick bench pass. Run this after an intentional performance shift
# (calibration change, algorithmic improvement) and commit the result —
# the CI regression gate compares every quick run against this file.
#
# Usage: scripts/regen_baselines.sh

set -eu

cd "$(dirname "$0")/.."

echo "==> building release binaries (offline)"
cargo build --release --offline

echo "==> deterministic quick bench pass"
./target/release/run_all --quick

echo "==> writing baselines from results/"
./target/release/check_bench --write

echo "==> verifying the fresh baselines gate green"
./target/release/check_bench

echo "==> done — review and commit baselines/bench_baselines.json"
