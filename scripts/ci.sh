#!/bin/sh
# Offline CI gate for the NEaT reproduction workspace.
#
# The workspace is hermetic by construction: every dependency is an
# in-tree path dependency (enforced by tests/hermetic.rs), so this
# script must pass on a bare checkout with no network access and no
# cargo registry cache. Any step that would touch the network is a bug.
#
# Usage: scripts/ci.sh   (from anywhere; cd's to the repo root)

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

# Formatting is checked only when rustfmt is installed; minimal
# toolchains without the rustfmt component still get a green gate.
if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> cargo fmt not available; skipping format check"
fi

# Lints are a hard gate when clippy is installed; toolchains without the
# component skip it rather than failing spuriously.
if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --all-targets -- -D warnings"
    cargo clippy --all-targets --offline -- -D warnings
else
    echo "==> cargo clippy not available; skipping lint gate"
fi

# Performance-regression gate: run the deterministic quick bench suite
# and compare headline metrics against the committed baselines.
echo "==> quick bench suite + regression gate"
./target/release/run_all --quick
./target/release/check_bench

echo "==> CI gate passed"
