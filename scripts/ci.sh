#!/bin/sh
# Offline CI gate for the NEaT reproduction workspace.
#
# The workspace is hermetic by construction: every dependency is an
# in-tree path dependency (enforced by tests/hermetic.rs), so this
# script must pass on a bare checkout with no network access and no
# cargo registry cache. Any step that would touch the network is a bug.
#
# Usage:
#   scripts/ci.sh                 # every tier (the full gate)
#   scripts/ci.sh --tier1         # build + test + fmt + clippy only
#   scripts/ci.sh --tier2         # quick benches + regression gates
#                                 # (expects a tier-1 build already present)
#   scripts/ci.sh --determinism   # sharded conn_scale byte-identical gate
#
# Every gate step runs through `run`, which checks the exit status
# explicitly. `set -e` alone is not enough: POSIX disables it inside any
# conditional context, so `sh scripts/ci.sh --tier1 && deploy` or a
# caller's `if scripts/ci.sh; then` would otherwise let a failing clippy
# or test step fall through to the next command instead of failing the
# gate.

set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
    status=$?
    if [ "$status" -ne 0 ]; then
        echo "FAILED (exit $status): $*" >&2
        exit "$status"
    fi
}

TIER1=1
TIER2=1
DET=1
case "${1:-}" in
    --tier1) TIER2=0; DET=0 ;;
    --tier2) TIER1=0; DET=0 ;;
    --determinism) TIER1=0; TIER2=0 ;;
    "") ;;
    *) echo "unknown argument: $1 (want --tier1, --tier2, or --determinism)" >&2; exit 2 ;;
esac

# Tier 2 and the determinism gate need the release binaries; build them
# if a tier-1 build from this or a cached run isn't already present.
ensure_release_build() {
    if [ ! -x target/release/run_all ]; then
        run cargo build --release --offline
    fi
}

# Module-size guard: no deployed source file may grow past 1000 lines —
# the socket-monolith decomposition stays decomposed. Out-of-line test
# modules (`*_tests.rs`, `proptests.rs`) are exempt: they are not
# deployed code (fault.rs's component weighing cuts them off too).
module_size_guard() {
    oversized=$(find crates -path '*/src/*' -name '*.rs' \
        ! -name '*_tests.rs' ! -name 'proptests.rs' \
        -exec awk 'END { if (NR > 1000) print FILENAME ": " NR " lines" }' {} \;)
    if [ -n "$oversized" ]; then
        echo "MODULE SIZE FAILURE: source files over 1000 lines (split them" >&2
        echo "into owned-state components; move tests to *_tests.rs):" >&2
        echo "$oversized" >&2
        exit 1
    fi
}

if [ "$TIER1" = 1 ]; then
    echo "==> [tier1] module-size guard (deployed sources <= 1000 lines)"
    module_size_guard

    run cargo build --release --offline

    run cargo test -q --offline

    # Formatting is checked only when rustfmt is installed; minimal
    # toolchains without the rustfmt component still get a green gate.
    if cargo fmt --version >/dev/null 2>&1; then
        run cargo fmt --all -- --check
    else
        echo "==> [tier1] cargo fmt not available; skipping format check"
    fi

    # Lints are a hard gate when clippy is installed; toolchains without
    # the component skip it rather than failing spuriously.
    if cargo clippy --version >/dev/null 2>&1; then
        run cargo clippy --all-targets --offline -- -D warnings
    else
        echo "==> [tier1] cargo clippy not available; skipping lint gate"
    fi

    echo "==> tier1 passed"
fi

if [ "$TIER2" = 1 ]; then
    ensure_release_build

    # Performance-regression gate: run the deterministic quick bench
    # suite (which includes the 10k-client conn_scale smoke and the
    # par_scale parallel-engine bench) and compare headline metrics
    # against the committed baselines.
    run ./target/release/run_all --quick

    run ./target/release/check_bench

    # Determinism gate: the quick conn_scale profile must be bit-stable —
    # same seed, same JSON, byte for byte. Catches nondeterminism leaking
    # into results (wall clock, map iteration order, uninitialised state).
    echo "==> [tier2] conn_scale + failover determinism gate (two runs, byte-identical)"
    for b in conn_scale failover; do
        cp "results/BENCH_$b.json" "results/.${b}_run1.json"
        run env NEAT_BENCH_QUICK=1 "./target/release/$b" --quick
        if ! cmp -s "results/.${b}_run1.json" "results/BENCH_$b.json"; then
            echo "DETERMINISM FAILURE: two fixed-seed $b runs differ:" >&2
            diff "results/.${b}_run1.json" "results/BENCH_$b.json" >&2 || true
            exit 1
        fi
        rm -f "results/.${b}_run1.json"
    done
    echo "==> determinism gate passed"

    echo "==> tier2 passed"
fi

if [ "$DET" = 1 ]; then
    ensure_release_build

    # Parallel-determinism gate: the sharded conn_scale executor must
    # produce the same bytes at every shard count — shard workers may
    # only change wall-clock time, never the history.
    echo "==> [determinism] conn_scale --shards 1/2/4 (byte-identical JSON)"
    for s in 1 2 4; do
        run env -u NEAT_SHARDS ./target/release/conn_scale --quick --shards "$s"
        cp results/BENCH_conn_scale.json "results/.conn_scale_shards$s.json"
    done
    for s in 2 4; do
        if ! cmp -s results/.conn_scale_shards1.json "results/.conn_scale_shards$s.json"; then
            echo "PARALLEL DETERMINISM FAILURE: --shards $s differs from --shards 1:" >&2
            diff results/.conn_scale_shards1.json "results/.conn_scale_shards$s.json" >&2 || true
            exit 1
        fi
    done
    rm -f results/.conn_scale_shards1.json results/.conn_scale_shards2.json results/.conn_scale_shards4.json

    # Failover runs the core-stack testbed (serial engine — its message
    # type is not Send), so this leg guards that its report is independent
    # of the requested shard count and of anything else environmental.
    echo "==> [determinism] failover --shards 1/2/4 (byte-identical JSON)"
    for s in 1 2 4; do
        run env -u NEAT_SHARDS ./target/release/failover --quick --shards "$s"
        cp results/BENCH_failover.json "results/.failover_shards$s.json"
    done
    for s in 2 4; do
        if ! cmp -s results/.failover_shards1.json "results/.failover_shards$s.json"; then
            echo "DETERMINISM FAILURE: failover --shards $s differs from --shards 1:" >&2
            diff results/.failover_shards1.json "results/.failover_shards$s.json" >&2 || true
            exit 1
        fi
    done
    rm -f results/.failover_shards1.json results/.failover_shards2.json results/.failover_shards4.json
    echo "==> parallel determinism gate passed"
fi

echo "==> CI gate passed"
