#!/bin/sh
# Offline CI gate for the NEaT reproduction workspace.
#
# The workspace is hermetic by construction: every dependency is an
# in-tree path dependency (enforced by tests/hermetic.rs), so this
# script must pass on a bare checkout with no network access and no
# cargo registry cache. Any step that would touch the network is a bug.
#
# Usage:
#   scripts/ci.sh            # both tiers (the full gate)
#   scripts/ci.sh --tier1    # build + test + fmt + clippy only
#   scripts/ci.sh --tier2    # quick benches + regression/determinism gates
#                            # (expects a tier-1 build already present)

set -eu

cd "$(dirname "$0")/.."

TIER1=1
TIER2=1
case "${1:-}" in
    --tier1) TIER2=0 ;;
    --tier2) TIER1=0 ;;
    "") ;;
    *) echo "unknown argument: $1 (want --tier1 or --tier2)" >&2; exit 2 ;;
esac

if [ "$TIER1" = 1 ]; then
    echo "==> [tier1] cargo build --release --offline"
    cargo build --release --offline

    echo "==> [tier1] cargo test -q --offline"
    cargo test -q --offline

    # Formatting is checked only when rustfmt is installed; minimal
    # toolchains without the rustfmt component still get a green gate.
    if cargo fmt --version >/dev/null 2>&1; then
        echo "==> [tier1] cargo fmt --check"
        cargo fmt --all -- --check
    else
        echo "==> [tier1] cargo fmt not available; skipping format check"
    fi

    # Lints are a hard gate when clippy is installed; toolchains without
    # the component skip it rather than failing spuriously.
    if cargo clippy --version >/dev/null 2>&1; then
        echo "==> [tier1] cargo clippy --all-targets -- -D warnings"
        cargo clippy --all-targets --offline -- -D warnings
    else
        echo "==> [tier1] cargo clippy not available; skipping lint gate"
    fi

    echo "==> tier1 passed"
fi

if [ "$TIER2" = 1 ]; then
    # Tier 2 needs the release binaries; build them if tier 1 didn't run
    # in this invocation.
    if [ ! -x target/release/run_all ]; then
        echo "==> [tier2] cargo build --release --offline (tier1 artifacts missing)"
        cargo build --release --offline
    fi

    # Performance-regression gate: run the deterministic quick bench
    # suite (which includes the 10k-client conn_scale smoke) and compare
    # headline metrics against the committed baselines.
    echo "==> [tier2] quick bench suite"
    ./target/release/run_all --quick

    echo "==> [tier2] bench regression gate"
    ./target/release/check_bench

    # Determinism gate: the quick conn_scale profile must be bit-stable —
    # same seed, same JSON, byte for byte. Catches nondeterminism leaking
    # into results (wall clock, map iteration order, uninitialised state).
    echo "==> [tier2] conn_scale determinism gate (two runs, byte-identical)"
    cp results/BENCH_conn_scale.json results/.conn_scale_run1.json
    ./target/release/conn_scale --quick >/dev/null
    if ! cmp -s results/.conn_scale_run1.json results/BENCH_conn_scale.json; then
        echo "DETERMINISM FAILURE: two fixed-seed conn_scale runs differ:" >&2
        diff results/.conn_scale_run1.json results/BENCH_conn_scale.json >&2 || true
        exit 1
    fi
    rm -f results/.conn_scale_run1.json
    echo "==> determinism gate passed"

    echo "==> tier2 passed"
fi

echo "==> CI gate passed"
