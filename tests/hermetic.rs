//! CI guard: the workspace must stay hermetic. Every dependency in every
//! `Cargo.toml` has to be an in-tree `path` dependency — no registry, no
//! git, no version-only entries. This is what makes
//! `cargo build --offline` work from a bare checkout with no network and
//! no registry cache, and it keeps the determinism contract (DESIGN.md)
//! honest: no upstream crate bump can silently change simulation results.
//!
//! The parser is deliberately simple (line-oriented, no TOML crate — that
//! would itself be a dependency) but strict: anything it cannot positively
//! identify as a path dependency is an error.

use std::fs;
use std::path::{Path, PathBuf};

/// Sections whose entries must all be path dependencies.
const DEP_SECTIONS: &[&str] = &[
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

fn workspace_root() -> PathBuf {
    // crates/harness -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn find_manifests(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // Skip build output and VCS metadata; everything else is fair game.
            if name == "target" || name == ".git" {
                continue;
            }
            find_manifests(&path, out);
        } else if name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Returns the section name if the line opens a TOML table, e.g.
/// `[dev-dependencies]` -> `dev-dependencies`,
/// `[target.'cfg(unix)'.dependencies]` -> kept verbatim for matching.
fn section_header(line: &str) -> Option<&str> {
    let t = line.trim();
    if t.starts_with('[') && t.ends_with(']') {
        Some(t[1..t.len() - 1].trim())
    } else {
        None
    }
}

fn is_dep_section(section: &str) -> bool {
    DEP_SECTIONS.iter().any(|s| {
        section == *s
            // [dependencies.foo] style and target-specific tables.
            || section.starts_with(&format!("{s}."))
            || (section.starts_with("target.") && section.ends_with(s))
    })
}

/// A dependency line is acceptable iff it is a pure path dependency
/// (inline table with `path = ...` and no `version`/`git`/`registry`)
/// or a `foo.workspace = true` redirect to the root manifest (which is
/// itself checked by this test).
fn check_dep_line(line: &str) -> Result<(), String> {
    let t = line.trim();
    let (name, rhs) = match t.split_once('=') {
        Some((n, r)) => (n.trim(), r.trim()),
        None => return Err(format!("unparseable dependency line: `{t}`")),
    };
    if name.ends_with(".workspace") && rhs == "true" {
        return Ok(());
    }
    if rhs.starts_with('{') {
        let banned = ["git", "registry", "version", "branch", "rev", "tag"];
        for key in banned {
            // Match ` key =` or `{key =` inside the inline table.
            if rhs
                .split(['{', ',', '}'])
                .any(|kv| kv.trim().starts_with(key) && kv.contains('='))
            {
                return Err(format!("`{name}` uses forbidden key `{key}`: `{t}`"));
            }
        }
        if !rhs.contains("path") {
            return Err(format!("`{name}` is not a path dependency: `{t}`"));
        }
        return Ok(());
    }
    // `foo = "1.2"` — a bare registry version. Never acceptable.
    Err(format!("`{name}` is a registry dependency: `{t}`"))
}

#[test]
fn workspace_has_no_external_dependencies() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let mut manifests = Vec::new();
    find_manifests(&root, &mut manifests);
    assert!(
        manifests.len() >= 10,
        "expected all crate manifests, found {}",
        manifests.len()
    );

    let mut violations = Vec::new();
    for manifest in &manifests {
        let text = fs::read_to_string(manifest).expect("read manifest");
        let mut in_dep_section = false;
        let mut multiline_table = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("");
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            if let Some(section) = section_header(t) {
                in_dep_section = is_dep_section(section);
                // `[dependencies.foo]` multi-line tables: the keys that
                // follow belong to one dependency.
                multiline_table = in_dep_section && section.contains('.');
                if multiline_table {
                    // Nothing to check on the header line itself.
                }
                continue;
            }
            if !in_dep_section {
                continue;
            }
            let verdict = if multiline_table {
                // Inside [dependencies.foo]: forbid version/git keys.
                let key = t.split('=').next().unwrap_or("").trim();
                if ["version", "git", "registry", "branch", "rev", "tag"].contains(&key) {
                    Err(format!("forbidden key `{key}` in multi-line dep table"))
                } else {
                    Ok(())
                }
            } else {
                check_dep_line(t)
            };
            if let Err(e) = verdict {
                violations.push(format!(
                    "{}:{}: {}",
                    manifest.strip_prefix(&root).unwrap_or(manifest).display(),
                    lineno + 1,
                    e
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (every dep must be an in-tree \
         `path` dependency — see DESIGN.md \"Determinism contract\"):\n  {}",
        violations.join("\n  ")
    );
}

/// The flip side: the path dependencies that are declared must actually
/// resolve inside the repository, so `--offline` builds cannot escape it.
#[test]
fn path_dependencies_stay_in_tree() {
    let root = workspace_root();
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let root_canon = root.canonicalize().expect("canonicalize root");
    let mut checked = 0;
    for line in text.lines() {
        let t = line.split('#').next().unwrap_or("").trim();
        if let Some(idx) = t.find("path =") {
            let rest = &t[idx + "path =".len()..];
            if let Some(p) = rest.split('"').nth(1) {
                let full = root.join(p);
                let canon = full
                    .canonicalize()
                    .unwrap_or_else(|_| panic!("path dep `{p}` does not exist"));
                assert!(
                    canon.starts_with(&root_canon),
                    "path dep `{p}` escapes the repository"
                );
                assert!(
                    canon.join("Cargo.toml").exists(),
                    "path dep `{p}` has no Cargo.toml"
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 8,
        "expected >=8 path deps in root manifest, found {checked}"
    );
}
