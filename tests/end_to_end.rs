//! End-to-end integration: full simulated testbeds — client machine,
//! 10GbE link, NIC steering, NEaT replicas, web servers — serving real
//! HTTP over real TCP.

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_sim::Time;

fn small_workload() -> Workload {
    Workload {
        conns_per_client: 4,
        requests_per_conn: 50,
        ..Workload::default()
    }
}

#[test]
fn single_component_serves_http() {
    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 3);
    spec.clients = 3;
    spec.workload = small_workload();
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(100), Time::from_millis(200));
    assert!(
        r.requests > 1_000,
        "throughput flows: {} requests",
        r.requests
    );
    assert_eq!(r.conn_errors, 0, "no errors under moderate load");
    // 20-byte files: bytes per request match.
    assert!(
        (tb.total_bytes() as f64 / tb.total_reported() as f64 - 20.0).abs() < 0.5,
        "every response body is the 20-byte file"
    );
}

#[test]
fn multi_component_serves_http() {
    let mut spec = TestbedSpec::amd(NeatConfig::multi(2), 3);
    spec.clients = 3;
    spec.workload = small_workload();
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(100), Time::from_millis(200));
    assert!(r.requests > 1_000, "multi-component pipeline works: {r:?}");
    assert_eq!(r.conn_errors, 0);
}

#[test]
fn work_spreads_across_replicas_and_webs() {
    let mut spec = TestbedSpec::amd(NeatConfig::single(3), 4);
    spec.clients = 8;
    spec.workload = small_workload();
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(100), Time::from_millis(300));
    assert!(r.requests > 1_000);
    // Every web instance served something (subsocket replication works
    // and the NIC spreads flows).
    for (i, m) in tb.web_metrics.iter().enumerate() {
        assert!(
            m.borrow().requests_served > 0,
            "web {i} never served a request"
        );
    }
    // Every replica thread did real work (RSS load balancing).
    for (i, t) in tb.replica_threads.iter().enumerate() {
        let busy = tb.sim.thread_stats(*t).busy_ns;
        assert!(busy > 0, "replica {i} idle — partitioning broken");
    }
}

#[test]
fn replicas_scale_throughput() {
    // The paper's core scalability claim in miniature: more replicas and
    // webs → more throughput, stack saturation moves out.
    let rate = |replicas: usize, webs: usize| {
        let mut spec = TestbedSpec::amd(NeatConfig::single(replicas), webs);
        spec.clients = 8;
        spec.workload = Workload {
            conns_per_client: 8,
            requests_per_conn: 100,
            ..Workload::default()
        };
        let mut tb = Testbed::build(spec);
        tb.measure(Time::from_millis(150), Time::from_millis(250))
            .krps
    };
    let one = rate(1, 2);
    let three = rate(3, 6);
    assert!(
        three > one * 2.0,
        "3 replicas + 6 webs should far outrun 1+2: {one:.0} -> {three:.0}"
    );
}

#[test]
fn xeon_ht_configuration_boots_and_serves() {
    let mut spec = TestbedSpec::xeon(NeatConfig::single(4), 9);
    spec.clients = 8;
    spec.workload = small_workload();
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(100), Time::from_millis(200));
    assert!(r.requests > 1_000, "HT-colocated layout works: {r:?}");
    assert_eq!(r.conn_errors, 0);
}

#[test]
fn latency_reasonable_at_low_load() {
    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 2);
    spec.clients = 1;
    spec.workload = Workload {
        conns_per_client: 1,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(100), Time::from_millis(200));
    assert!(
        r.mean_latency < Time::from_micros(300),
        "single-connection RTT should be tens of microseconds, got {}",
        r.mean_latency
    );
    assert!(
        r.mean_latency > Time::from_micros(5),
        "but not magically fast"
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let mut spec = TestbedSpec::amd(NeatConfig::single(2), 2);
        spec.clients = 2;
        spec.workload = small_workload();
        let mut tb = Testbed::build(spec);
        let r = tb.measure(Time::from_millis(100), Time::from_millis(100));
        (r.requests, tb.sim.events_dispatched())
    };
    assert_eq!(run(), run(), "same seed, same history");
}

#[test]
fn monolith_baseline_serves_http() {
    use neat_apps::scenario::{MonoTestbed, MonoTestbedSpec};
    let mut spec = MonoTestbedSpec::amd(neat_monolith::MonoTuning::best());
    spec.web_instances = 4;
    spec.clients = 4;
    spec.workload = small_workload();
    let mut tb = MonoTestbed::build(spec);
    let r = tb.measure(Time::from_millis(100), Time::from_millis(200));
    assert!(r.requests > 1_000, "monolith works: {r:?}");
    assert_eq!(r.conn_errors, 0);
}

#[test]
fn neat_beats_tuned_monolith_on_amd() {
    // The headline: NEaT 3x vs the best-tuned Linux on the same machine.
    use neat_apps::scenario::{MonoTestbed, MonoTestbedSpec};
    let load = Workload {
        conns_per_client: 16,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let neat_krps = {
        let mut spec = TestbedSpec::amd(NeatConfig::single(3), 6);
        spec.workload = load.clone();
        let mut tb = Testbed::build(spec);
        tb.measure(Time::from_millis(150), Time::from_millis(250))
            .krps
    };
    let linux_krps = {
        let mut spec = MonoTestbedSpec::amd(neat_monolith::MonoTuning::best());
        spec.workload = load;
        let mut tb = MonoTestbed::build(spec);
        tb.measure(Time::from_millis(150), Time::from_millis(250))
            .krps
    };
    let gain = neat_krps / linux_krps - 1.0;
    assert!(
        gain > 0.10 && gain < 0.60,
        "paper: NEaT handles 13-35% more requests; got {:.1}% ({neat_krps:.0} vs {linux_krps:.0})",
        gain * 100.0
    );
}
