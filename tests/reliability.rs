//! Reliability integration: crash → stateless recovery, fault isolation
//! between replicas, and component-granular recovery in the
//! multi-component configuration (§3.6, §6.6).

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat::supervisor::Role;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_sim::Time;

fn loaded_testbed(cfg: NeatConfig, webs: usize) -> Testbed {
    let mut spec = TestbedSpec::amd(cfg, webs);
    spec.clients = 4;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 1_000, // long-lived connections: crash impact visible
        ..Workload::default()
    };
    Testbed::build(spec)
}

/// Kill one component and return (pid of component, role).
fn poison(tb: &mut Testbed, replica: usize, role: Role) {
    let pid = tb.deployment.comp_pids[replica]
        .iter()
        .find(|(r, _)| *r == role)
        .map(|(_, p)| *p)
        .expect("component exists");
    tb.sim.send_external(pid, Msg::Poison);
}

#[test]
fn single_replica_crash_recovers_and_service_continues() {
    let mut tb = loaded_testbed(NeatConfig::single(2), 4);
    let before = tb.measure(Time::from_millis(150), Time::from_millis(150));
    assert!(before.requests > 1_000);

    poison(&mut tb, 0, Role::Single);
    let after = tb.measure(Time::from_millis(100), Time::from_millis(300));

    // The supervisor saw the crash and restarted the replica.
    let stats = tb.deployment.sup_stats.borrow().clone();
    assert_eq!(stats.crashes_seen, 1);
    assert_eq!(stats.recoveries, 1);
    assert_eq!(
        stats.stateful_losses, 1,
        "single-component crash loses TCP state"
    );

    // Service continued: new connections flow after recovery.
    assert!(
        after.requests > 1_000,
        "the stack keeps serving after a replica crash: {after:?}"
    );
}

#[test]
fn crash_only_affects_own_replicas_connections() {
    let mut tb = loaded_testbed(NeatConfig::single(3), 4);
    tb.sim.run_until(Time::from_millis(250));
    let lost_before: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    assert_eq!(lost_before, 0);

    poisoned_connections_bounded(&mut tb);
}

fn poisoned_connections_bounded(tb: &mut Testbed) {
    // Count connections owned per replica before the crash.
    let total_conns: usize = 4 * 8; // clients x conns
    poison(tb, 1, Role::Single);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(200));
    let lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    // Partitioning: roughly 1/3 of connections lived in the crashed
    // replica; the others must be untouched.
    assert!(lost > 0, "the crashed replica did own connections");
    assert!(
        (lost as usize) < total_conns * 2 / 3,
        "only the crashed replica's connections are lost: {lost}/{total_conns}"
    );
}

#[test]
fn multi_component_tcp_crash_loses_state_but_recovers() {
    let mut tb = loaded_testbed(NeatConfig::multi(2), 4);
    let before = tb.measure(Time::from_millis(150), Time::from_millis(150));
    assert!(before.requests > 500);

    poison(&mut tb, 0, Role::Tcp);
    let after = tb.measure(Time::from_millis(100), Time::from_millis(300));
    let stats = tb.deployment.sup_stats.borrow().clone();
    assert_eq!(stats.crashes_seen, 1);
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.stateful_losses, 1, "TCP component is stateful");
    assert!(after.requests > 500, "service resumed: {after:?}");
}

#[test]
fn multi_component_stateless_crashes_are_transparent() {
    // IP, PF, UDP crashes lose no connection state: the paper's "fully
    // transparent recovery — the effect on network traffic no worse than
    // a packet delay or loss" (Table 3).
    for role in [Role::Ip, Role::Pf, Role::Udp] {
        let mut tb = loaded_testbed(NeatConfig::multi(2), 4);
        tb.sim.run_until(Time::from_millis(250));
        let errs_before = tb.total_errors();
        poison(&mut tb, 0, role);
        let after = tb.measure(Time::from_millis(100), Time::from_millis(400));
        let stats = tb.deployment.sup_stats.borrow().clone();
        assert_eq!(stats.crashes_seen, 1, "{role:?}");
        assert_eq!(stats.recoveries, 1, "{role:?}");
        assert_eq!(
            stats.stateful_losses, 0,
            "{role:?} is (pseudo)stateless — no TCP state lost"
        );
        let lost: u64 = tb
            .web_metrics
            .iter()
            .map(|m| m.borrow().conns_lost_to_crash)
            .sum();
        assert_eq!(lost, 0, "{role:?} crash must not lose connections");
        assert_eq!(
            tb.total_errors(),
            errs_before,
            "{role:?} crash invisible to clients (retransmission absorbs it)"
        );
        assert!(after.requests > 500, "{role:?}: service continued");
    }
}

#[test]
fn driver_crash_recovers_whole_machine_path() {
    let mut tb = loaded_testbed(NeatConfig::single(2), 4);
    tb.sim.run_until(Time::from_millis(250));
    tb.sim.send_external(tb.deployment.driver, Msg::Poison);
    let after = tb.measure(Time::from_millis(100), Time::from_millis(400));
    let stats = tb.deployment.sup_stats.borrow().clone();
    assert_eq!(stats.crashes_seen, 1);
    assert_eq!(stats.recoveries, 1);
    assert_eq!(stats.stateful_losses, 0, "driver holds no TCP state");
    assert!(
        after.requests > 500,
        "traffic flows again after driver restart: {after:?}"
    );
}

#[test]
fn repeated_crashes_keep_recovering() {
    let mut tb = loaded_testbed(NeatConfig::single(2), 4);
    tb.sim.run_until(Time::from_millis(200));
    for i in 0..5 {
        let replica = i % 2;
        // Re-resolve the pid: restarts allocate fresh pids.
        let head = tb.deployment.sup_stats.borrow().recoveries; // count before
        let _ = head;
        // The supervisor's records moved; poison via the *current* head.
        // (comp_pids holds boot-time pids; after restart find live pid via
        // the driver's announcements — easiest faithful way: crash the
        // other replica which is still original, or re-poison a live pid.)
        let pid = tb.deployment.comp_pids[replica][0].1;
        if tb.sim.is_alive(pid) {
            tb.sim.send_external(pid, Msg::Poison);
        } else {
            // Boot-time pid already dead (restarted earlier): skip — the
            // supervisor-tracked instance is tested via sup_stats below.
        }
        tb.sim.run_until(tb.sim.now() + Time::from_millis(120));
    }
    let after = tb.measure(Time::from_millis(50), Time::from_millis(300));
    assert!(
        after.requests > 1_000,
        "system survives repeated faults: {after:?}"
    );
    let stats = tb.deployment.sup_stats.borrow().clone();
    assert!(stats.recoveries >= 2);
}

#[test]
fn replicated_tcp_crash_is_transparent() {
    // With buddy replication on, the TCP component crash that loses state
    // in `multi_component_tcp_crash_loses_state_but_recovers` becomes
    // fully transparent: the buddy hands the dead replica's flows to the
    // respawned head and clients never notice.
    let mut tb = loaded_testbed(NeatConfig::multi(2).replicated(), 4);
    tb.sim.run_until(Time::from_millis(150));
    let errs_before = tb.total_errors();

    poison(&mut tb, 0, Role::Tcp);
    let after = tb.measure(Time::from_millis(100), Time::from_millis(300));

    let stats = tb.deployment.sup_stats.borrow().clone();
    assert_eq!(stats.crashes_seen, 1);
    assert_eq!(stats.recoveries, 1);
    assert_eq!(
        stats.stateful_losses, 0,
        "replication preserves the TCP state across the crash"
    );
    assert!(
        stats.handoffs_completed >= 1,
        "the buddy completed a flow handoff: {stats:?}"
    );
    let lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    assert_eq!(lost, 0, "no established connection died with the replica");
    assert_eq!(
        tb.total_errors(),
        errs_before,
        "clients saw no error from the crash"
    );
    assert!(after.requests > 500, "service continued: {after:?}");
}

#[test]
fn replicated_crash_is_transparent_under_every_congestion_controller() {
    // The TcbImage carries the per-socket controller selection, so buddy
    // failover must stay transparent whichever algorithm the sockets
    // picked via `SockOpt::CongestionAlgo` — including the controllers
    // that keep internal model state (BBR's bw filter, DCTCP's alpha),
    // which is rebuilt fresh on the restored socket.
    for algo in [
        neat_tcp::CongestionAlgo::Cubic,
        neat_tcp::CongestionAlgo::Bbr,
        neat_tcp::CongestionAlgo::Dctcp,
    ] {
        let mut spec = TestbedSpec::amd(NeatConfig::multi(2).replicated(), 4);
        spec.clients = 4;
        spec.workload = Workload {
            conns_per_client: 8,
            requests_per_conn: 1_000,
            ..Workload::default()
        };
        spec.sock_opts = vec![neat_tcp::SockOpt::CongestionAlgo(algo)];
        let mut tb = Testbed::build(spec);
        tb.sim.run_until(Time::from_millis(150));
        let errs_before = tb.total_errors();

        poison(&mut tb, 0, Role::Tcp);
        let after = tb.measure(Time::from_millis(100), Time::from_millis(300));

        let stats = tb.deployment.sup_stats.borrow().clone();
        assert_eq!(stats.crashes_seen, 1, "{algo:?}");
        assert_eq!(
            stats.stateful_losses, 0,
            "{algo:?}: replication preserves TCP state"
        );
        let lost: u64 = tb
            .web_metrics
            .iter()
            .map(|m| m.borrow().conns_lost_to_crash)
            .sum();
        assert_eq!(lost, 0, "{algo:?}: no connection died with the replica");
        assert_eq!(
            tb.total_errors(),
            errs_before,
            "{algo:?}: clients saw no error from the crash"
        );
        assert!(
            after.requests > 500,
            "{algo:?}: service continued: {after:?}"
        );
    }
}

/// One fixed-seed replicated run with a TCP crash at 150 ms; returns the
/// per-client received-byte-stream digests at 500 ms virtual time.
fn crashed_run_digests() -> Vec<u64> {
    let mut tb = loaded_testbed(NeatConfig::multi(2).replicated(), 4);
    tb.sim.run_until(Time::from_millis(150));
    poison(&mut tb, 0, Role::Tcp);
    tb.sim.run_until(Time::from_millis(500));
    tb.client_metrics
        .iter()
        .map(|m| m.borrow().rx_digest)
        .collect()
}

#[test]
fn replicated_crash_recovery_is_byte_identical() {
    // Recovery is not just "no errors": the exact byte sequence every
    // client application reads — across the crash, the handoff, and the
    // resumed connections — must be reproducible. Two identically seeded
    // runs have to deliver identical streams.
    let a = crashed_run_digests();
    let b = crashed_run_digests();
    assert!(
        a.iter().all(|&d| d != 0),
        "every client received data: {a:?}"
    );
    assert_eq!(
        a, b,
        "fixed-seed crash recovery delivers byte-identical client streams"
    );
}

#[test]
fn scale_down_migrates_flows_without_client_errors() {
    // Live migration rides the same transfer path as crash failover:
    // `ScaleDown` drains the highest-numbered replica by moving its
    // established flows to the survivor, with zero client-visible impact.
    let mut tb = loaded_testbed(NeatConfig::multi(2).replicated(), 4);
    tb.sim.run_until(Time::from_millis(150));
    let errs_before = tb.total_errors();

    tb.sim
        .send_external(tb.deployment.supervisor, Msg::ScaleDown);
    let deadline = tb.sim.now() + Time::from_millis(500);
    while tb.deployment.sup_stats.borrow().scale_downs_completed == 0 && tb.sim.now() < deadline {
        let next = tb.sim.now() + Time::from_millis(10);
        tb.sim.run_until(next);
    }
    let after = tb.measure(Time::from_millis(50), Time::from_millis(200));

    let stats = tb.deployment.sup_stats.borrow().clone();
    assert_eq!(stats.scale_downs_completed, 1, "the drain finished");
    let lost: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum();
    assert_eq!(lost, 0, "migration must not drop established connections");
    assert_eq!(
        tb.total_errors(),
        errs_before,
        "clients saw no error from the migration"
    );
    assert!(
        after.requests > 500,
        "the survivor serves the migrated flows: {after:?}"
    );
}

#[test]
fn crash_during_scale_down_is_a_stale_crash_not_a_panic() {
    // Regression for the supervisor crash races: a replica picked for
    // scale-down can still crash while draining. The supervisor must
    // classify that as a stale crash and finish the removal — not
    // `unwrap()` on a record it already retired, and not resurrect a
    // terminating replica.
    let mut tb = loaded_testbed(NeatConfig::multi(2).replicated(), 4);
    tb.sim.run_until(Time::from_millis(150));

    tb.sim
        .send_external(tb.deployment.supervisor, Msg::ScaleDown);
    // ScaleDown drains the highest-numbered live replica; kill its TCP
    // head immediately, mid-drain.
    poison(&mut tb, 1, Role::Tcp);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(300));

    let stats = tb.deployment.sup_stats.borrow().clone();
    assert_eq!(stats.crashes_seen, 1);
    assert_eq!(
        stats.stale_crashes, 1,
        "the crash of a draining replica is stale, not a respawn: {stats:?}"
    );
    assert_eq!(
        stats.scale_downs_completed, 1,
        "the scale-down still completes against the dead head"
    );
    let after = tb.measure(Time::from_millis(50), Time::from_millis(200));
    assert!(
        after.requests > 500,
        "the surviving replica keeps serving: {after:?}"
    );
}

#[test]
fn aslr_layouts_differ_across_replicas_and_restarts() {
    use neat::security::AslrObserver;
    use neat_util::Rng;
    // Replica layout tokens are fresh random values per (re)start; model
    // the observer over the simulated assignment stream.
    let mut obs = AslrObserver::new();
    let mut rng = Rng::seed_from_u64(1);
    let layouts: Vec<u64> = (0..3).map(|_| rng.gen()).collect();
    for _ in 0..3_000 {
        obs.record(layouts[rng.gen_range(0usize..3)]);
    }
    assert_eq!(obs.distinct_layouts(), 3);
    assert!(obs.entropy_bits() > 1.5, "~log2(3) bits of layout entropy");
    assert!(obs.consecutive_same_fraction() < 0.45);
}
