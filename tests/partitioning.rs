//! Partitioning invariants: flow affinity through the NIC, subsocket
//! replication of listeners, and connection-to-replica stability (§3.1,
//! §3.3, Figure 2).

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_net::tcp::{TcpFlags, TcpHeader};
use neat_net::{EtherType, EthernetFrame, Ipv4Header, MacAddr, SeqNum};
use neat_nic::{FaultInjector, Nic, NicConfig, Steering};
use neat_sim::Time;
use std::net::Ipv4Addr;

const SRC: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 100);
const DST: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);

fn tcp_frame(src_port: u16, dst_port: u16, flags: TcpFlags) -> Vec<u8> {
    let tcp = TcpHeader::new(src_port, dst_port, SeqNum(1), SeqNum(0), flags).emit(&[], SRC, DST);
    let ip = Ipv4Header::new(SRC, DST, neat_net::ipv4::IpProtocol::Tcp, tcp.len()).emit(&tcp);
    EthernetFrame {
        dst: MacAddr::local(1),
        src: MacAddr::local(2),
        ethertype: EtherType::Ipv4,
    }
    .emit(&ip)
}

#[test]
fn every_packet_of_a_flow_takes_the_same_path() {
    // Figure 2's invariant at the NIC level: SYN, data, ACK, FIN of one
    // flow all reach the same queue.
    let mut nic = Nic::new(
        NicConfig {
            queue_pairs: 4,
            ..Default::default()
        },
        FaultInjector::disabled(3),
    );
    for port in 1024..1074u16 {
        let q_syn = nic
            .wire_rx(tcp_frame(port, 80, TcpFlags::SYN).into(), 0)
            .unwrap();
        let q_ack = nic
            .wire_rx(tcp_frame(port, 80, TcpFlags::ack()).into(), 0)
            .unwrap();
        let q_psh = nic
            .wire_rx(tcp_frame(port, 80, TcpFlags::psh_ack()).into(), 0)
            .unwrap();
        let q_fin = nic
            .wire_rx(tcp_frame(port, 80, TcpFlags::fin_ack()).into(), 0)
            .unwrap();
        assert!(q_syn == q_ack && q_ack == q_psh && q_psh == q_fin);
    }
}

#[test]
fn listening_sockets_replicated_across_all_replicas() {
    // §3.3: one listen() creates one subsocket per replica — connections
    // arrive at every replica without any inter-replica coordination.
    let mut spec = TestbedSpec::amd(NeatConfig::single(3), 1);
    spec.clients = 6;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 20,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    tb.measure(Time::from_millis(100), Time::from_millis(300));
    // All three replica threads processed traffic for the single web
    // server's single port.
    for (i, t) in tb.replica_threads.iter().enumerate() {
        let st = tb.sim.thread_stats(*t);
        assert!(
            st.busy_ns > 100_000,
            "replica {i} received no connections — subsocket replication broken"
        );
    }
}

#[test]
fn connections_do_not_migrate_between_replicas() {
    // Run a loaded testbed with per-flow checks implicit: any misrouted
    // segment would RST its connection (the owning stack wouldn't know
    // the flow), surfacing as client errors. Zero errors proves affinity.
    let mut spec = TestbedSpec::amd(NeatConfig::single(3), 4);
    spec.clients = 8;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(150), Time::from_millis(400));
    assert!(r.requests > 5_000);
    assert_eq!(
        r.conn_errors, 0,
        "a migrating flow would be RST by the wrong replica"
    );
}

#[test]
fn steering_respects_termination_state() {
    // §3.4: a queue marked non-accepting gets no *new* flows, but filters
    // keep existing flows flowing.
    let mut s = Steering::new(3);
    // Record where existing flows live, pin them with filters.
    let existing: Vec<(Vec<u8>, usize)> = (2000..2020u16)
        .map(|p| {
            let f = tcp_frame(p, 80, TcpFlags::ack());
            let q = s.classify(&f);
            let key = Steering::parse_flow(&f).unwrap().key;
            s.add_filter(key, q);
            (f, q)
        })
        .collect();
    // Queue 1 enters termination state.
    s.set_accepting(1, false);
    for p in 3000..3100u16 {
        let q = s.classify(&tcp_frame(p, 80, TcpFlags::SYN));
        assert_ne!(q, 1, "new flows must avoid the draining queue");
    }
    for (f, q) in existing {
        assert_eq!(s.classify(&f), q, "existing flows keep their path");
    }
}

#[test]
fn random_replica_assignment_gives_layout_unpredictability() {
    // §3.8: consecutive client connections land on unpredictably
    // different replicas. Sample the assignment stream from the library's
    // RNG-driven selection (modelled at the NIC's hash here: distinct
    // source ports → spread).
    let s = Steering::new(4);
    let mut transitions_same = 0;
    let mut counts = [0usize; 4];
    let mut prev = None;
    let n = 2_000;
    for p in 0..n {
        let q = s.classify(&tcp_frame(10_000 + p, 80, TcpFlags::SYN));
        counts[q] += 1;
        if prev == Some(q) {
            transitions_same += 1;
        }
        prev = Some(q);
    }
    // Balanced across replicas…
    for (i, c) in counts.iter().enumerate() {
        assert!(
            (*c as f64 / n as f64 - 0.25).abs() < 0.1,
            "queue {i} share skewed: {counts:?}"
        );
    }
    // …and an attacker probing consecutive connections rarely hits the
    // same layout twice (the Toeplitz hash anti-correlates consecutive
    // ports, beating even the 1/N of an ideal uniform pick).
    let frac = transitions_same as f64 / n as f64;
    assert!(
        frac < 0.4,
        "consecutive connections must not stick to one replica: {frac}"
    );
}
