//! Property-based tests on protocol invariants across crates: wire-format
//! round trips, checksum detection, reassembly correctness under arbitrary
//! segmentation/reordering, and TCP data integrity under adverse delivery.
//! Runs on the in-tree `neat_util::check` harness.

use neat_net::tcp::{TcpFlags, TcpHeader};
use neat_net::{EtherType, EthernetFrame, Ipv4Header, MacAddr, SeqNum};
use neat_tcp::assembler::Assembler;
use neat_tcp::{SocketId, TcpConfig};
use neat_util::check::{bytes, check, vec_of, Config};
use neat_util::{prop_assert, prop_assert_eq};
use std::net::Ipv4Addr;

const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

#[test]
fn ethernet_roundtrip() {
    check(
        "ethernet_roundtrip",
        Config::default().cases(64),
        |rng| {
            (
                rng.gen::<[u8; 6]>(),
                rng.gen::<[u8; 6]>(),
                bytes(rng, 0..512),
            )
        },
        |(dst, src, payload)| {
            let f = EthernetFrame {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: EtherType::Ipv4,
            };
            let bytes = f.emit(&payload);
            let (g, off) = EthernetFrame::parse(&bytes).unwrap();
            prop_assert_eq!(f, g);
            prop_assert_eq!(&bytes[off..], &payload[..]);
            Ok(())
        },
    );
}

#[test]
fn ipv4_roundtrip() {
    check(
        "ipv4_roundtrip",
        Config::default().cases(64),
        |rng| {
            (
                rng.gen::<u32>(),
                rng.gen::<u32>(),
                rng.gen_range(1u8..=255),
                bytes(rng, 0..1400),
            )
        },
        |(src, dst, ttl, payload)| {
            if ttl == 0 {
                return Ok(());
            }
            let mut h = Ipv4Header::new(
                Ipv4Addr::from(src),
                Ipv4Addr::from(dst),
                neat_net::ipv4::IpProtocol::Tcp,
                payload.len(),
            );
            h.ttl = ttl;
            let bytes = h.emit(&payload);
            let (g, range) = Ipv4Header::parse(&bytes).unwrap();
            prop_assert_eq!(g.src, Ipv4Addr::from(src));
            prop_assert_eq!(g.dst, Ipv4Addr::from(dst));
            prop_assert_eq!(g.ttl, ttl);
            prop_assert_eq!(&bytes[range], &payload[..]);
            Ok(())
        },
    );
}

#[test]
fn ipv4_single_bitflip_detected_in_header() {
    check(
        "ipv4_single_bitflip_detected_in_header",
        Config::default().cases(64),
        |rng| {
            (
                bytes(rng, 0..64),
                rng.gen_range(0usize..20),
                rng.gen_range(0u8..8),
            )
        },
        |(payload, byte, bit)| {
            if byte >= 20 || bit >= 8 {
                return Ok(());
            }
            let h = Ipv4Header::new(A, B, neat_net::ipv4::IpProtocol::Udp, payload.len());
            let mut bytes = h.emit(&payload);
            bytes[byte] ^= 1 << bit;
            // Any single-bit header flip must be rejected (checksum or field
            // validation).
            prop_assert!(Ipv4Header::parse(&bytes).is_err());
            Ok(())
        },
    );
}

#[test]
fn tcp_segment_roundtrip() {
    check(
        "tcp_segment_roundtrip",
        Config::default().cases(64),
        |rng| {
            (
                rng.gen_range(1u16..65535),
                rng.gen_range(1u16..65535),
                (rng.gen::<u32>(), rng.gen::<u32>(), rng.gen::<u16>()),
                bytes(rng, 0..1400),
            )
        },
        |(sp, dp, (seq, ack, window), payload)| {
            if sp == 0 || dp == 0 {
                return Ok(());
            }
            let mut h = TcpHeader::new(sp, dp, SeqNum(seq), SeqNum(ack), TcpFlags::psh_ack());
            h.window = window;
            let bytes = h.emit(&payload, A, B);
            let (g, range) = TcpHeader::parse(&bytes, A, B).unwrap();
            prop_assert_eq!(g.src_port, sp);
            prop_assert_eq!(g.dst_port, dp);
            prop_assert_eq!(g.seq, SeqNum(seq));
            prop_assert_eq!(g.ack, SeqNum(ack));
            prop_assert_eq!(g.window, window);
            prop_assert_eq!(&bytes[range], &payload[..]);
            Ok(())
        },
    );
}

#[test]
fn tcp_payload_bitflip_detected() {
    check(
        "tcp_payload_bitflip_detected",
        Config::default().cases(64),
        |rng| {
            (
                bytes(rng, 1..256),
                rng.gen_range(0u8..8),
                rng.gen::<usize>(),
            )
        },
        |(payload, bit, pos_seed)| {
            if payload.is_empty() || bit >= 8 {
                return Ok(());
            }
            let h = TcpHeader::new(1, 2, SeqNum(9), SeqNum(3), TcpFlags::ack());
            let mut bytes = h.emit(&payload, A, B);
            let pos = 20 + pos_seed % payload.len();
            bytes[pos] ^= 1 << bit;
            prop_assert!(TcpHeader::parse(&bytes, A, B).is_err());
            Ok(())
        },
    );
}

#[test]
fn seqnum_arithmetic_wraps_consistently() {
    check(
        "seqnum_arithmetic_wraps_consistently",
        Config::default().cases(64),
        |rng| {
            (
                rng.gen::<u32>(),
                rng.gen_range(0u32..1_000_000),
                rng.gen_range(0u32..1_000_000),
            )
        },
        |(base, d1, d2)| {
            let s = SeqNum(base);
            let a = s + d1;
            let b = s + d2;
            prop_assert_eq!(a - s, d1 as i32);
            prop_assert_eq!(b - a, d2 as i32 - d1 as i32);
            prop_assert_eq!(a.max(b), if d1 >= d2 { a } else { b });
            prop_assert_eq!(a.min(b), if d1 <= d2 { a } else { b });
            Ok(())
        },
    );
}

/// The assembler reconstructs the exact byte stream no matter how the
/// stream is chopped, reordered, or duplicated.
#[test]
fn assembler_reconstructs_stream() {
    check(
        "assembler_reconstructs_stream",
        Config::default().cases(64),
        |rng| {
            (
                bytes(rng, 1..2_000),
                vec_of(rng, 1..20, |r| r.gen_range(1usize..200)),
                rng.gen::<u64>(),
                rng.gen::<bool>(),
            )
        },
        |(data, cuts, order_seed, dup)| {
            if data.is_empty() || cuts.is_empty() || cuts.contains(&0) {
                return Ok(());
            }
            // Chop into segments.
            let mut segs: Vec<(u32, Vec<u8>)> = Vec::new();
            let mut off = 0usize;
            let mut i = 0;
            while off < data.len() {
                let len = cuts[i % cuts.len()].min(data.len() - off);
                segs.push((off as u32, data[off..off + len].to_vec()));
                off += len;
                i += 1;
            }
            // Shuffle deterministically.
            let mut order: Vec<usize> = (0..segs.len()).collect();
            let mut s = neat_util::Rng::seed_from_u64(order_seed);
            s.shuffle(&mut order);
            if dup && !segs.is_empty() {
                order.push(order[0]);
            }
            // Feed through the assembler, draining in-order data as it forms.
            let base = SeqNum(7_000_000);
            let mut asm = Assembler::new(64 * 1024);
            let mut rcv = base;
            let mut out = Vec::new();
            for idx in order {
                let (o, seg) = &segs[idx];
                prop_assert!(asm.insert(base + *o, seg, rcv));
                while let Some(run) = asm.take_contiguous(rcv) {
                    rcv += run.len() as u32;
                    out.extend_from_slice(&run);
                }
            }
            prop_assert_eq!(out, data);
            prop_assert!(asm.is_empty());
            Ok(())
        },
    );
}

/// Two real sockets exchanging an arbitrary stream deliver exactly the
/// stream, regardless of write sizes.
#[test]
fn tcp_end_to_end_stream_integrity() {
    check(
        "tcp_end_to_end_stream_integrity",
        Config::default().cases(48),
        |rng| vec_of(rng, 1..12, |r| bytes(r, 1..900)),
        |chunks| {
            if chunks.is_empty() || chunks.iter().any(|c| c.is_empty()) {
                return Ok(());
            }
            let cfg = TcpConfig {
                initial_rto_ns: 10_000_000,
                ..TcpConfig::default()
            };
            let mut c = neat_tcp::TcpSocket::connect(
                SocketId(1),
                &cfg,
                (A, 40_000),
                (B, 80),
                SeqNum(100),
                0,
            );
            let (syn, _) = c.poll_transmit(0).unwrap();
            let mut srv = neat_tcp::TcpSocket::accept_from_syn(
                SocketId(2),
                &cfg,
                (B, 80),
                (A, 40_000),
                &syn,
                SeqNum(900),
                0,
            );
            // Handshake + transfer loop with real emit/parse.
            let mut sent = Vec::new();
            let mut received = Vec::new();
            let mut pending: Vec<Vec<u8>> = chunks.clone();
            pending.reverse();
            let mut now = 0u64;
            for _round in 0..10_000 {
                now += 100_000;
                if let Some(chunk) = pending.last() {
                    if let Ok(n) = c.send(chunk) {
                        sent.extend_from_slice(&chunk[..n]);
                        if n == chunk.len() {
                            pending.pop();
                        } else {
                            let rest = pending.last_mut().unwrap().split_off(n);
                            *pending.last_mut().unwrap() = rest;
                        }
                    }
                }
                c.on_timer(now);
                srv.on_timer(now);
                let mut moved = true;
                while moved {
                    moved = false;
                    while let Some((h, p)) = c.poll_transmit(now) {
                        let bytes = h.emit(&p, A, B);
                        let (g, r) = TcpHeader::parse(&bytes, A, B).unwrap();
                        srv.on_segment(&g, &bytes[r], now);
                        moved = true;
                    }
                    while let Some((h, p)) = srv.poll_transmit(now) {
                        let bytes = h.emit(&p, B, A);
                        let (g, r) = TcpHeader::parse(&bytes, B, A).unwrap();
                        c.on_segment(&g, &bytes[r], now);
                        moved = true;
                    }
                }
                let mut buf = [0u8; 4096];
                while let Ok(n) = srv.recv(&mut buf) {
                    if n == 0 {
                        break;
                    }
                    received.extend_from_slice(&buf[..n]);
                }
                let total: usize = chunks.iter().map(|c| c.len()).sum();
                if received.len() == total {
                    break;
                }
            }
            let flat: Vec<u8> = chunks.concat();
            prop_assert_eq!(received, flat);
            Ok(())
        },
    );
}

/// The NIC's TSO split + receiver reassembly is identity on payload.
#[test]
fn tso_split_preserves_stream() {
    check(
        "tso_split_preserves_stream",
        Config::default().cases(48),
        |rng| (bytes(rng, 1..8_000), rng.gen_range(400usize..1500)),
        |(payload, mss)| {
            if payload.is_empty() || mss == 0 {
                return Ok(());
            }
            let tcp = TcpHeader::new(1000, 80, SeqNum(5_000), SeqNum(1), TcpFlags::psh_ack())
                .emit(&payload, A, B);
            let ip = Ipv4Header::new(A, B, neat_net::ipv4::IpProtocol::Tcp, tcp.len()).emit(&tcp);
            let frame = EthernetFrame {
                dst: MacAddr::local(1),
                src: MacAddr::local(2),
                ethertype: EtherType::Ipv4,
            }
            .emit(&ip);
            let frames = neat_nic::tso::tso_split(frame, mss);
            let mut asm = Assembler::new(64 * 1024);
            let mut rcv = SeqNum(5_000);
            let mut out = Vec::new();
            for f in frames {
                let (_, off) = EthernetFrame::parse(&f).unwrap();
                let (iph, range) = Ipv4Header::parse(&f[off..]).unwrap();
                let l4 = &f[off..][range];
                let (th, pr) = TcpHeader::parse(l4, iph.src, iph.dst).unwrap();
                prop_assert!(asm.insert(th.seq, &l4[pr], rcv));
                while let Some(run) = asm.take_contiguous(rcv) {
                    rcv += run.len() as u32;
                    out.extend_from_slice(&run);
                }
            }
            prop_assert_eq!(out, payload);
            Ok(())
        },
    );
}
