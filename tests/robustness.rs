//! Robustness under adverse network conditions (smoltcp-style fault
//! injection at the NIC), plus end-to-end exercises of the UDP datagram
//! plane and the §3.8 security property on live connection assignments.

use neat::config::NeatConfig;
use neat::security::AslrObserver;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_nic::FaultConfig;
use neat_sim::Time;

#[test]
fn packet_loss_never_corrupts_data() {
    // 5% of inbound frames at the server NIC vanish; TCP retransmission
    // must deliver every request eventually, and every response body must
    // still be exactly the 20-byte file.
    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 3);
    spec.clients = 4;
    spec.workload = Workload {
        conns_per_client: 4,
        requests_per_conn: 50,
        timeout_ns: 20_000_000_000,
        ..Workload::default()
    };
    spec.wire_faults = FaultConfig {
        drop_pct: 5,
        ..Default::default()
    };
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(200), Time::from_millis(800));
    assert!(r.requests > 1_000, "progress under loss: {r:?}");
    let served: u64 = tb
        .web_metrics
        .iter()
        .map(|m| m.borrow().requests_served)
        .sum();
    let bytes: u64 = tb.web_metrics.iter().map(|m| m.borrow().bytes_sent).sum();
    assert_eq!(bytes, served * 20, "every body is exactly the 20-byte file");
    // Client-side: completed responses all carried 20 bytes.
    let completed: u64 = tb.client_metrics.iter().map(|m| m.borrow().completed).sum();
    let rbytes: u64 = tb
        .client_metrics
        .iter()
        .map(|m| m.borrow().response_bytes)
        .sum();
    assert_eq!(rbytes, completed * 20, "no truncated or duplicated bodies");
}

#[test]
fn corruption_is_detected_and_survived() {
    // 3% of inbound frames get one bit flipped. Checksums must catch them
    // (they become losses), and the stream stays byte-exact.
    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 3);
    spec.clients = 4;
    spec.workload = Workload {
        conns_per_client: 4,
        requests_per_conn: 50,
        timeout_ns: 20_000_000_000,
        ..Workload::default()
    };
    spec.wire_faults = FaultConfig {
        corrupt_pct: 3,
        ..Default::default()
    };
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(200), Time::from_millis(800));
    assert!(r.requests > 1_000, "progress under corruption: {r:?}");
    let completed: u64 = tb.client_metrics.iter().map(|m| m.borrow().completed).sum();
    let rbytes: u64 = tb
        .client_metrics
        .iter()
        .map(|m| m.borrow().response_bytes)
        .sum();
    assert_eq!(
        rbytes,
        completed * 20,
        "a single flipped bit must never reach the application"
    );
}

#[test]
fn random_assignment_measured_on_live_connections() {
    // §3.8: the library binds each active open to a random replica, and
    // incoming connections spread via the NIC hash. Measure the actual
    // per-connection replica stream observed by the web servers.
    let mut spec = TestbedSpec::amd(NeatConfig::single(3), 3);
    spec.clients = 6;
    spec.workload = Workload {
        conns_per_client: 4,
        requests_per_conn: 5, // heavy connection churn
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    tb.sim.run_until(Time::from_millis(600));
    let mut obs = AslrObserver::new();
    for m in &tb.web_metrics {
        for pid in &m.borrow().served_by {
            obs.record(*pid);
        }
    }
    assert!(
        obs.len() > 200,
        "enough connections observed: {}",
        obs.len()
    );
    assert_eq!(obs.distinct_layouts(), 3, "all three replicas serve");
    assert!(
        obs.entropy_bits() > 1.2,
        "assignment entropy ≈ log2(3): {}",
        obs.entropy_bits()
    );
}

#[test]
fn udp_datagrams_flow_end_to_end() {
    // Exercise the UDP plane through a full deployment: an app binds a
    // port on a replica, the harness injects a datagram from the wire via
    // the client NIC path, and an unreachable port triggers ICMP.
    use neat::msg::Msg;
    use neat_sim::{Ctx, Event, ProcId, Process};
    use std::cell::RefCell;
    use std::rc::Rc;

    type Received = Rc<RefCell<Vec<(u16, Vec<u8>)>>>;

    struct UdpEcho {
        stack: ProcId,
        got: Received,
    }
    impl Process<Msg> for UdpEcho {
        fn name(&self) -> String {
            "udp-echo".into()
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
            match ev {
                Event::Start => {
                    ctx.send(
                        self.stack,
                        Msg::UdpBind {
                            port: 6969,
                            app: ctx.self_id,
                        },
                    );
                }
                Event::Message {
                    msg: Msg::UdpData { port, src, data },
                    ..
                } => {
                    self.got.borrow_mut().push((port, data.clone()));
                    // Echo it back, reversed (like smoltcp's example).
                    let mut rev = data;
                    rev.reverse();
                    ctx.send(
                        self.stack,
                        Msg::UdpTx {
                            src_port: port,
                            dst: src,
                            data: rev,
                        },
                    );
                }
                _ => {}
            }
        }
    }

    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 1);
    spec.clients = 1;
    spec.workload = Workload {
        conns_per_client: 1,
        requests_per_conn: 5,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    let got = Rc::new(RefCell::new(Vec::new()));
    // Bind the echo app on replica 0's UDP plane.
    let stack0 = tb.deployment.sockets_heads[0];
    let web_thread = tb.web_threads[0];
    let echo = tb.sim.spawn(
        web_thread,
        Box::new(UdpEcho {
            stack: stack0,
            got: got.clone(),
        }),
    );
    let _ = echo;
    tb.sim.run_until(tb.sim.now() + Time::from_millis(5));

    // Inject a UDP datagram as if it came from the client machine.
    use neat_apps::scenario::{CLIENT_IP, CLIENT_MAC, SERVER_IP, SERVER_MAC};
    let dgram = neat_net::udp::UdpHeader::emit(5353, 6969, b"abcdefg", CLIENT_IP, SERVER_IP);
    let ip = neat_net::Ipv4Header::new(
        CLIENT_IP,
        SERVER_IP,
        neat_net::ipv4::IpProtocol::Udp,
        dgram.len(),
    )
    .emit(&dgram);
    let frame = neat_net::EthernetFrame {
        dst: SERVER_MAC,
        src: CLIENT_MAC,
        ethertype: neat_net::EtherType::Ipv4,
    }
    .emit(&ip);
    // Deliver straight to replica 0's head (deterministic path).
    tb.sim.send_external(stack0, Msg::NetRx(frame.into()));
    tb.sim.run_until(tb.sim.now() + Time::from_millis(10));

    let got = got.borrow();
    assert_eq!(got.len(), 1, "datagram delivered to the bound app");
    assert_eq!(got[0].0, 6969);
    assert_eq!(got[0].1, b"abcdefg");
}
