//! Observability-layer round trips (ISSUE: neat-obs).
//!
//! Three properties the unified observability layer promises:
//!
//! 1. A traced run exports parseable chrome://tracing JSON whose span
//!    begin/end events are balanced.
//! 2. The metrics registry snapshot reflects what actually happened
//!    (requests served, segments moved, frames forwarded).
//! 3. Observability never perturbs the simulation: a fixed-seed run is
//!    bit-identical with tracing enabled and disabled.

use neat::config::NeatConfig;
use neat_apps::scenario::{RunReport, Testbed, TestbedSpec, Workload};
use neat_sim::Time;
use neat_util::Json;

/// A small quickstart-shaped run: NEaT 2x, two web servers, one client.
fn quickstart_run() -> (RunReport, u64) {
    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 2);
    spec.clients = 2;
    spec.workload = Workload {
        conns_per_client: 4,
        requests_per_conn: 50,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    let report = tb.measure(Time::from_millis(50), Time::from_millis(150));
    (report, tb.sim.events_dispatched())
}

fn count_phase(events: &[Json], code: &str) -> usize {
    events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(code))
        .count()
}

/// Tracing a quickstart run yields chrome-trace JSON that parses with the
/// in-tree parser and has balanced begin/end span events.
#[test]
fn traced_run_exports_balanced_chrome_trace() {
    neat_obs::trace::enable(1 << 16);
    let (report, _) = quickstart_run();
    assert!(report.requests > 0, "run served no requests");
    neat_obs::trace::disable();

    let rendered = neat_obs::trace::export().render();
    let json = Json::parse(&rendered).expect("trace JSON must parse");
    let events = json
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "traced run recorded no events");

    // The engine emits complete (X) dispatch spans; every begin must pair
    // with an end (the quickstart path uses X and i, so both counts are
    // usually zero — balance must hold either way).
    let begins = count_phase(events, "B");
    let ends = count_phase(events, "E");
    assert_eq!(begins, ends, "unbalanced spans: {begins} B vs {ends} E");
    assert!(
        count_phase(events, "X") > 0,
        "no dispatch spans in traced run"
    );

    // Every event has the fields chrome://tracing requires.
    for e in events {
        assert!(e.get("name").is_some(), "event missing name");
        assert!(e.get("ts").and_then(|t| t.as_f64()).is_some());
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
    }
    neat_obs::trace::clear();
}

/// The metrics snapshot after a run reflects the traffic that flowed.
#[test]
fn metrics_snapshot_reflects_run() {
    let (report, _) = quickstart_run();
    let snap = neat_obs::snapshot();
    let counter = |name: &str| -> f64 {
        snap.get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
    };
    // Server-side serves and client-side completions can differ by the
    // responses in flight at the window edges — equal to within a few %.
    let served = counter("web.requests_served");
    let completed = report.requests as f64;
    assert!(
        (served - completed).abs() <= 0.05 * completed + 8.0,
        "served {served} vs completed {completed}"
    );
    assert!(counter("tcp.rx_segments") > 0.0);
    assert!(counter("nic.rx_frames") > 0.0);
    assert!(counter("driver.rx_forwarded") > 0.0);
}

/// Fixed-seed runs are bit-identical with tracing on and off: the
/// observability layer observes, it never steers.
#[test]
fn tracing_does_not_perturb_determinism() {
    let (plain, plain_events) = quickstart_run();
    neat_obs::trace::enable(1 << 16);
    let (traced, traced_events) = quickstart_run();
    neat_obs::trace::disable();
    neat_obs::trace::clear();

    assert_eq!(plain_events, traced_events, "event counts diverged");
    assert_eq!(plain.requests, traced.requests);
    assert_eq!(plain.duration, traced.duration);
    assert_eq!(plain.mean_latency, traced.mean_latency);
    assert_eq!(plain.p99_latency, traced.p99_latency);
    assert_eq!(plain.conn_errors, traced.conn_errors);
    assert_eq!(plain.krps.to_bits(), traced.krps.to_bits());
    assert_eq!(plain.mbps.to_bits(), traced.mbps.to_bits());
}
