//! Full-stack batching equivalence (ISSUE: batched zero-copy message path).
//!
//! The per-link message coalescing in `neat-sim` and the batch-aware
//! process overrides (`on_batch`) promise to be *behaviour-transparent*:
//! they amortize wakeups and dispatch, but every application-visible byte
//! stream must be identical with batching on and off. These tests assert
//! that promise over a real two-machine deployment — client TCP stack,
//! 10GbE link, NIC steering, driver, NEaT replica, socket library — and
//! pin down fixed-seed determinism and packet-pool quiescence on the same
//! topology.

use neat::driver::DriverProc;
use neat::msg::{Msg, NeighborRole};
use neat::netcode::{FrameIo, RxClass};
use neat::nic_proc::{default_server_nic, NicMode, NicProc};
use neat::sockets::{LibEvent, SocketLib};
use neat::stack_single::SingleStackProc;
use neat_net::ethernet::MacAddr;
use neat_net::ipv4::IpProtocol;
use neat_sim::{Ctx, Event, ProcId, Process, Sim, SimConfig, Time};
use neat_tcp::{SockEvent, SocketId, TcpConfig, TcpStack};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);
const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 100);
const PORT: u16 = 7878;
const CONNS: usize = 4;
const REQUESTS: usize = 8;
const REQ_LEN: usize = 48;
/// The echo server repeats each request this many times.
const ECHO_FACTOR: usize = 8;
const RESP_LEN: usize = REQ_LEN * ECHO_FACTOR;

/// Server application: accepts connections through the unified
/// `SocketLib` surface and echoes every request back `ECHO_FACTOR` times.
struct EchoApp {
    lib: SocketLib,
}

impl Process<Msg> for EchoApp {
    fn name(&self) -> String {
        "echo-app".into()
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            Event::Start => self.lib.listen(ctx, PORT).unwrap(),
            Event::Message { msg, .. } => {
                for e in self.lib.handle(ctx, &msg) {
                    if let LibEvent::Readable { fd } = e {
                        while self.lib.poll(fd).readable {
                            let Ok(data) = self.lib.recv(ctx, fd) else {
                                break;
                            };
                            if data.is_empty() {
                                break; // EOF
                            }
                            let mut resp = Vec::with_capacity(data.len() * ECHO_FACTOR);
                            for _ in 0..ECHO_FACTOR {
                                resp.extend_from_slice(&data);
                            }
                            self.lib.send(ctx, fd, resp).unwrap();
                        }
                    }
                }
            }
            Event::Timer { .. } | Event::Batch { .. } => {}
        }
    }
}

/// Deterministic request bytes for connection `idx`, request `k`.
fn request(idx: usize, k: usize) -> Vec<u8> {
    (0..REQ_LEN).map(|i| (idx * 31 + k * 7 + i) as u8).collect()
}

/// Client: a library TCP stack (httperf-style OS bypass) driving `CONNS`
/// connections of `REQUESTS` fixed-content requests each, recording the
/// full per-connection response stream.
struct FetchClient {
    nic: ProcId,
    stack: TcpStack,
    io: FrameIo,
    /// Connection-open order index per socket (stable across runs).
    idx: BTreeMap<SocketId, usize>,
    /// Requests issued so far, per connection index.
    issued: Vec<usize>,
    /// Response bytes consumed so far, per connection index.
    streams: Rc<RefCell<BTreeMap<usize, Vec<u8>>>>,
}

impl FetchClient {
    fn new(nic: ProcId, streams: Rc<RefCell<BTreeMap<usize, Vec<u8>>>>) -> FetchClient {
        let mut stack = TcpStack::new(CLIENT_IP, TcpConfig::default());
        stack.set_port_range(49_152, 49_651);
        let mut io = FrameIo::new(CLIENT_IP, MacAddr::local(2));
        io.seed_arp(SERVER_IP, MacAddr::local(1));
        FetchClient {
            nic,
            stack,
            io,
            idx: BTreeMap::new(),
            issued: vec![0; CONNS],
            streams,
        }
    }

    fn drain(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now().as_nanos();
        while let Some(ev) = self.stack.poll_event() {
            match ev {
                SockEvent::Connected(sock) => {
                    let i = self.idx[&sock];
                    let _ = self.stack.send(sock, &request(i, 0));
                    self.issued[i] = 1;
                }
                SockEvent::Readable(sock) => {
                    let i = self.idx[&sock];
                    // The unified vectored receive surface.
                    let mut buf = [0u8; 16384];
                    loop {
                        let (a, b) = buf.split_at_mut(8192);
                        match self.stack.recv_vectored(sock, &mut [a, b]) {
                            Ok(0) => break,
                            Ok(n) => {
                                self.streams
                                    .borrow_mut()
                                    .entry(i)
                                    .or_default()
                                    .extend_from_slice(&buf[..n]);
                                if n < buf.len() {
                                    break;
                                }
                            }
                            Err(_) => break,
                        }
                    }
                    // Issue the next request once the full response landed.
                    let have = self.streams.borrow().get(&i).map(|s| s.len()).unwrap_or(0);
                    while self.issued[i] < REQUESTS && have >= self.issued[i] * RESP_LEN {
                        let k = self.issued[i];
                        let _ = self.stack.send(sock, &request(i, k));
                        self.issued[i] += 1;
                    }
                }
                _ => {}
            }
        }
        while let Some((dst, h, payload)) = self.stack.poll_transmit(now) {
            let seg = h.emit(&payload, self.stack.local_ip, dst);
            self.io.send_ip(dst, IpProtocol::Tcp, &seg, now);
        }
        for frame in self.io.drain() {
            ctx.send(self.nic, Msg::NetTx(frame));
        }
        if let Some(d) = self.stack.next_timeout() {
            ctx.set_timer(Time::from_nanos(d.saturating_sub(now)), 0);
        }
    }

    fn absorb(&mut self, ctx: &mut Ctx<'_, Msg>, frame: &neat_net::PktBuf) {
        let now = ctx.now().as_nanos();
        if let RxClass::Tcp { src, seg } = self.io.classify_rx(frame, now) {
            if let Ok((h, range)) = neat_net::TcpHeader::parse(&seg, src, self.stack.local_ip) {
                self.stack.handle_segment(src, &h, &seg[range], now);
            }
        }
    }
}

impl Process<Msg> for FetchClient {
    fn name(&self) -> String {
        "fetch-client".into()
    }

    fn on_batch(&mut self, ctx: &mut Ctx<'_, Msg>, from: ProcId, msgs: Vec<Msg>) {
        let mut any = false;
        for msg in msgs {
            match msg {
                Msg::NetRx(frame) => {
                    self.absorb(ctx, &frame);
                    any = true;
                }
                other => self.on_event(ctx, Event::Message { from, msg: other }),
            }
        }
        if any {
            self.drain(ctx);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, Msg>, ev: Event<Msg>) {
        match ev {
            Event::Start => {
                // Let the SetNeighbor/Announce wiring settle first.
                ctx.set_timer(Time::from_millis(1), 1);
            }
            Event::Timer { token: 1 } => {
                let now = ctx.now().as_nanos();
                for i in 0..CONNS {
                    let sock = self.stack.connect(SERVER_IP, PORT, now).unwrap();
                    self.idx.insert(sock, i);
                }
                self.drain(ctx);
            }
            Event::Timer { .. } => {
                let now = ctx.now().as_nanos();
                self.stack.on_timer(now);
                self.drain(ctx);
            }
            Event::Message { msg, .. } => {
                if let Msg::NetRx(frame) = msg {
                    self.absorb(ctx, &frame);
                    self.drain(ctx);
                }
            }
            Event::Batch { from, msgs } => {
                for msg in msgs {
                    self.on_event(ctx, Event::Message { from, msg });
                }
            }
        }
    }
}

/// Build the two-machine topology and run it to completion. Returns the
/// per-connection response streams and the number of dispatched events.
fn run(batch_ns: u64) -> (BTreeMap<usize, Vec<u8>>, u64) {
    neat_net::pktbuf::reset();
    let mut sim: Sim<Msg> = Sim::new(SimConfig {
        seed: 42,
        batch_ns,
        ..SimConfig::default()
    });

    // Server machine: NIC (device) → driver → single-component replica.
    let srv_m = sim.add_machine(neat_sim::MachineSpec::amd_opteron_6168());
    let srv_dev = sim.add_device_thread(srv_m);
    let srv_nic = sim.spawn(
        srv_dev,
        Box::new(NicProc::new(
            "nic.srv",
            default_server_nic(1),
            NicMode::Server { driver: ProcId(0) },
        )),
    );
    let drv = sim.spawn(
        sim.hw_thread(srv_m, 0, 0),
        Box::new(DriverProc::new("drv", srv_nic, 1)),
    );
    sim.send_external(
        srv_nic,
        Msg::SetNeighbor {
            role: NeighborRole::Driver,
            pid: drv,
        },
    );
    // Keep the stack on plain TcpConfig::default() (no GSO bursts, stock
    // RTO): the assertions below calibrate against that wire behaviour.
    let stack_cfg = neat::config::NeatConfig {
        tcp: TcpConfig::default(),
        ..neat::config::NeatConfig::single(1)
    };
    let stack = sim.spawn(
        sim.hw_thread(srv_m, 1, 0),
        Box::new(SingleStackProc::new(
            "neat.0",
            0,
            drv,
            ProcId(0),
            SERVER_IP,
            MacAddr::local(1),
            &stack_cfg,
            vec![(CLIENT_IP, MacAddr::local(2))],
        )),
    );
    let lib = SocketLib::new(ProcId(0), vec![stack], None);
    sim.spawn(sim.hw_thread(srv_m, 2, 0), Box::new(EchoApp { lib }));

    // Client machine: hub NIC + library-stack client.
    let cli_m = sim.add_machine(neat_sim::MachineSpec::amd_opteron_6168());
    let cli_dev = sim.add_device_thread(cli_m);
    let cli_nic = sim.spawn(
        cli_dev,
        Box::new(NicProc::new(
            "nic.cli",
            default_server_nic(1),
            NicMode::ClientHub,
        )),
    );
    let streams = Rc::new(RefCell::new(BTreeMap::new()));
    let client = sim.spawn(
        sim.hw_thread(cli_m, 0, 0),
        Box::new(FetchClient::new(cli_nic, streams.clone())),
    );
    sim.send_external(
        cli_nic,
        Msg::Announce {
            queue: 0,
            head: client,
        },
    );

    // Cable the two NICs together.
    sim.send_external(
        srv_nic,
        Msg::SetNeighbor {
            role: NeighborRole::PeerNic,
            pid: cli_nic,
        },
    );
    sim.send_external(
        cli_nic,
        Msg::SetNeighbor {
            role: NeighborRole::PeerNic,
            pid: srv_nic,
        },
    );

    sim.run_until(Time::from_millis(500));
    let events = sim.events_dispatched();
    let out = streams.borrow().clone();
    drop(sim);
    // Every in-flight PktBuf was delivered or dropped with the sim: the
    // refcount accounting must balance (tentpole teardown invariant).
    neat_net::pktbuf::assert_quiescent();
    (out, events)
}

/// The expected full response stream of connection `idx`.
fn expected_stream(idx: usize) -> Vec<u8> {
    let mut s = Vec::with_capacity(REQUESTS * RESP_LEN);
    for k in 0..REQUESTS {
        let req = request(idx, k);
        for _ in 0..ECHO_FACTOR {
            s.extend_from_slice(&req);
        }
    }
    s
}

/// Batching on vs off: byte-identical application-visible streams, in
/// identical per-connection order — over the full NIC/driver/stack path.
#[test]
fn batched_and_unbatched_streams_identical() {
    let (unbatched, _) = run(0);
    let (batched, _) = run(2_000);

    assert_eq!(unbatched.len(), CONNS, "all connections completed");
    for i in 0..CONNS {
        assert_eq!(
            unbatched.get(&i).map(|s| s.len()),
            Some(REQUESTS * RESP_LEN),
            "conn {i} did not finish its workload unbatched"
        );
        assert_eq!(
            unbatched.get(&i),
            Some(&expected_stream(i)),
            "conn {i} stream corrupted"
        );
    }
    assert_eq!(
        unbatched, batched,
        "batching must not change any application-visible byte"
    );
}

/// Fixed-seed determinism with batching enabled: same seed, same history.
#[test]
fn batched_run_is_deterministic() {
    let a = run(2_000);
    let b = run(2_000);
    assert_eq!(a.1, b.1, "event counts diverged across identical runs");
    assert_eq!(a.0, b.0, "streams diverged across identical runs");
}

/// The zero-copy plumbing actually engages on this path: header strips
/// are windowed handles (no payload copy), and the pool recycles grants.
#[test]
fn zero_copy_pool_engages() {
    let (streams, _) = run(2_000);
    assert_eq!(streams.len(), CONNS);
    let stats = neat_net::pktbuf::stats();
    assert!(
        stats.copies_avoided > 0,
        "classify_rx should strip headers without copying: {stats:?}"
    );
    assert!(stats.grants > 0, "frames are born from the pool");
}
