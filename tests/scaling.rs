//! Dynamic scaling integration (§3.4): scale-up under load, scale-down
//! with lazy termination that never breaks a connection.

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_sim::Time;

fn testbed_with_spare_cores() -> Testbed {
    // NEaT 1x + 5 webs on the 12-core AMD: the single replica (~150 krps)
    // is the bottleneck (5 webs could serve ~250), and spare cores remain
    // for growth.
    let mut spec = TestbedSpec::amd(NeatConfig::single(1), 5);
    spec.clients = 10;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 100,
        ..Workload::default()
    };
    Testbed::build(spec)
}

#[test]
fn scale_up_adds_serving_replica() {
    let mut tb = testbed_with_spare_cores();
    let before = tb.measure(Time::from_millis(150), Time::from_millis(250));
    assert!(before.requests > 1_000);

    tb.sim.send_external(tb.deployment.supervisor, Msg::ScaleUp);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(100));
    assert_eq!(tb.deployment.sup_stats.borrow().scale_ups, 1);

    let after = tb.measure(Time::from_millis(100), Time::from_millis(250));
    // One replica saturates around 150 krps; with webs as limit (~150),
    // the new replica relieves the stack bottleneck.
    assert!(
        after.krps > before.krps * 1.05,
        "scale-up increased throughput: {:.1} -> {:.1}",
        before.krps,
        after.krps
    );
    assert_eq!(after.conn_errors, 0, "scale-up breaks nothing");
}

#[test]
fn scale_down_is_lazy_and_breaks_no_connection() {
    // Boot 2 replicas, then scale down: the draining replica keeps
    // serving its existing connections and is only GC'd once drained.
    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 3);
    spec.clients = 6;
    spec.workload = Workload {
        conns_per_client: 4,
        requests_per_conn: 200,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    tb.sim.run_until(Time::from_millis(200));
    let errs_before = tb.total_errors();

    tb.sim
        .send_external(tb.deployment.supervisor, Msg::ScaleDown);
    // Connections finish after 200 requests each and get replaced — the
    // replacements land only on the surviving replica; the terminating one
    // drains and is garbage collected.
    let mut drained = false;
    for _ in 0..40 {
        tb.sim.run_until(tb.sim.now() + Time::from_millis(100));
        if tb.deployment.sup_stats.borrow().scale_downs_completed == 1 {
            drained = true;
            break;
        }
    }
    assert!(drained, "lazy termination completed within the run");
    assert_eq!(
        tb.total_errors(),
        errs_before,
        "no connection was broken by scale-down"
    );
    // And the system still serves.
    let after = tb.measure(Time::from_millis(50), Time::from_millis(200));
    assert!(after.requests > 500, "one replica still serving: {after:?}");
}

#[test]
fn scale_down_refuses_to_kill_last_replica() {
    let mut tb = testbed_with_spare_cores();
    tb.sim.run_until(Time::from_millis(100));
    tb.sim
        .send_external(tb.deployment.supervisor, Msg::ScaleDown);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(300));
    assert_eq!(
        tb.deployment.sup_stats.borrow().scale_downs_completed,
        0,
        "the last replica must never be terminated"
    );
    let after = tb.measure(Time::from_millis(50), Time::from_millis(200));
    assert!(after.requests > 500);
}

#[test]
fn scale_up_then_down_round_trip() {
    let mut tb = testbed_with_spare_cores();
    tb.sim.run_until(Time::from_millis(150));
    tb.sim.send_external(tb.deployment.supervisor, Msg::ScaleUp);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(200));
    tb.sim
        .send_external(tb.deployment.supervisor, Msg::ScaleDown);
    let mut done = false;
    for _ in 0..40 {
        tb.sim.run_until(tb.sim.now() + Time::from_millis(100));
        if tb.deployment.sup_stats.borrow().scale_downs_completed == 1 {
            done = true;
            break;
        }
    }
    assert!(done, "replica added by scale-up can drain away again");
    let after = tb.measure(Time::from_millis(50), Time::from_millis(200));
    assert!(after.requests > 500, "back to steady state: {after:?}");
}
