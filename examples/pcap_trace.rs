//! Write a Wireshark-readable pcap of a complete HTTP-over-TCP exchange —
//! ARP resolution, three-way handshake, request/response, and the FIN
//! close — produced entirely by this repository's protocol stack.
//!
//! ```sh
//! cargo run --release --example pcap_trace
//! # then: wireshark neat-trace.pcap
//! ```

use neat::netcode::{FrameIo, RxClass};
use neat_net::ipv4::IpProtocol;
use neat_net::pcap::PcapWriter;
use neat_net::{MacAddr, PktBuf, TcpHeader};
use neat_tcp::{TcpConfig, TcpStack};
use std::net::Ipv4Addr;

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 100);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(192, 168, 69, 1);

struct Host {
    io: FrameIo,
    stack: TcpStack,
}

impl Host {
    fn new(ip: Ipv4Addr, mac: MacAddr) -> Host {
        Host {
            io: FrameIo::new(ip, mac),
            stack: TcpStack::new(ip, TcpConfig::default()),
        }
    }

    /// Push stack segments into Ethernet frames (via ARP as needed).
    fn pump_out(&mut self, now: u64) -> Vec<PktBuf> {
        while let Some((dst, h, payload)) = self.stack.poll_transmit(now) {
            let seg = h.emit(&payload, self.stack.local_ip, dst);
            self.io.send_ip(dst, IpProtocol::Tcp, &seg, now);
        }
        self.io.drain()
    }

    fn rx(&mut self, frame: &PktBuf, now: u64) {
        if let RxClass::Tcp { src, seg } = self.io.classify_rx(frame, now) {
            if let Ok((h, range)) = TcpHeader::parse(&seg, src, self.stack.local_ip) {
                self.stack.handle_segment(src, &h, &seg[range], now);
            }
        }
    }
}

fn main() -> std::io::Result<()> {
    let file = std::fs::File::create("neat-trace.pcap")?;
    let mut pcap = PcapWriter::new(file)?;
    let mut frames_written = 0u64;

    let mut client = Host::new(CLIENT_IP, MacAddr::local(2));
    let mut server = Host::new(SERVER_IP, MacAddr::local(1));
    server.stack.listen(80).unwrap();

    let conn = client.stack.connect(SERVER_IP, 80, 0).unwrap();
    let mut now = 0u64;
    let mut srv_sock = None;
    let mut request_sent = false;
    let mut response_sent = false;
    let mut closed = false;

    for _round in 0..200 {
        now += 50_000; // 50 us per round
                       // client -> server
        for f in client.pump_out(now) {
            pcap.write_frame(now, &f)?;
            frames_written += 1;
            server.rx(&f, now);
        }
        // server -> client
        for f in server.pump_out(now) {
            pcap.write_frame(now, &f)?;
            frames_written += 1;
            client.rx(&f, now);
        }
        client.stack.on_timer(now);
        server.stack.on_timer(now);

        // Application logic.
        while let Some(ev) = server.stack.poll_event() {
            use neat_tcp::SockEvent::*;
            match ev {
                Acceptable(lid) => {
                    if let Ok(s) = server.stack.accept(lid) {
                        srv_sock = Some(s);
                    }
                }
                Readable(s) => {
                    let mut buf = [0u8; 512];
                    while let Ok(n) = server.stack.recv(s, &mut buf) {
                        if n == 0 {
                            break;
                        }
                        print!("server got: {}", String::from_utf8_lossy(&buf[..n]));
                    }
                    if !response_sent {
                        response_sent = true;
                        let body = "HTTP/1.1 200 OK\r\nContent-Length: 13\r\n\r\nhello, world\n";
                        server.stack.send(s, body.as_bytes()).unwrap();
                    }
                }
                _ => {}
            }
        }
        while let Some(ev) = client.stack.poll_event() {
            use neat_tcp::SockEvent::*;
            match ev {
                Connected(s) if !request_sent => {
                    request_sent = true;
                    client
                        .stack
                        .send(s, b"GET /hello HTTP/1.1\r\nHost: neat\r\n\r\n")
                        .unwrap();
                }
                Readable(s) => {
                    let mut buf = [0u8; 512];
                    while let Ok(n) = client.stack.recv(s, &mut buf) {
                        if n == 0 {
                            break;
                        }
                        print!("client got: {}", String::from_utf8_lossy(&buf[..n]));
                    }
                    if !closed {
                        closed = true;
                        client.stack.close(conn, now).unwrap();
                        if let Some(ss) = srv_sock {
                            let _ = server.stack.close(ss, now);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    println!("\nwrote {frames_written} frames to neat-trace.pcap");
    println!("(ARP request/reply, SYN/SYN-ACK/ACK, HTTP request/response, FIN close)");
    println!("open it with: wireshark neat-trace.pcap  /  tcpdump -r neat-trace.pcap");
    Ok(())
}
