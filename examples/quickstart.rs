//! Quickstart: boot a two-replica NEaT deployment on a simulated 12-core
//! machine, serve a web page over real TCP/IP through the simulated 10GbE
//! link, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_sim::Time;

fn main() {
    println!("Booting NEaT 2x (two single-component stack replicas) on the");
    println!("simulated AMD testbed, with two web servers and one client…\n");

    let mut spec = TestbedSpec::amd(NeatConfig::single(2), 2);
    spec.clients = 2;
    spec.workload = Workload {
        conns_per_client: 4,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);

    let report = tb.measure(Time::from_millis(100), Time::from_millis(300));

    println!("After {} of simulated time:", report.duration);
    println!("  requests completed : {}", report.requests);
    println!("  request rate       : {:.1} krps", report.krps);
    println!("  mean latency       : {}", report.mean_latency);
    println!("  p99 latency        : {}", report.p99_latency);
    println!("  connection errors  : {}", report.conn_errors);

    println!("\nPer web-server instance:");
    for (i, m) in tb.web_metrics.iter().enumerate() {
        let m = m.borrow();
        println!(
            "  web.{i}: {} requests served over {} accepted connections",
            m.requests_served, m.conns_accepted
        );
    }

    println!("\nPer stack replica (dedicated core utilization):");
    for (i, t) in tb.replica_threads.iter().enumerate() {
        let st = tb.sim.thread_stats(*t);
        println!(
            "  neat.{i}: load {:.0}%  ({} events, {} sleeps)",
            st.load(report.duration) * 100.0,
            st.events,
            st.sleeps
        );
    }

    println!(
        "\nEvery request crossed the simulated wire as real Ethernet/IPv4/TCP \
         frames,\nsteered by the NIC's RSS hash to one of the two isolated \
         stack replicas."
    );
    println!(
        "{} simulation events were dispatched.",
        tb.sim.events_dispatched()
    );
}
