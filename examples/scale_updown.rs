//! Dynamic scaling demo (§3.4): grow the stack under load, then shrink it
//! again with lazy termination — no connection is ever broken.
//!
//! ```sh
//! cargo run --release --example scale_updown
//! ```

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_sim::Time;

fn main() {
    // One replica, five web instances: the stack is the bottleneck.
    let mut spec = TestbedSpec::amd(NeatConfig::single(1), 5);
    spec.clients = 10;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);

    let r1 = tb.measure(Time::from_millis(150), Time::from_millis(250));
    println!(
        "1 replica : {:6.1} krps (stack saturated at {:.0}%)",
        r1.krps,
        tb.sim.thread_stats(tb.replica_threads[0]).load(r1.duration) * 100.0
    );

    println!("→ NEaT becomes overloaded; the supervisor spawns a new replica…");
    tb.sim.send_external(tb.deployment.supervisor, Msg::ScaleUp);
    tb.sim.run_until(tb.sim.now() + Time::from_millis(100));

    let r2 = tb.measure(Time::from_millis(100), Time::from_millis(250));
    println!(
        "2 replicas: {:6.1} krps  (+{:.0}%)  errors during scale-up: {}",
        r2.krps,
        (r2.krps / r1.krps - 1.0) * 100.0,
        r2.conn_errors
    );

    println!("→ load drops; scale down with lazy termination…");
    let errs_before = tb.total_errors();
    tb.sim
        .send_external(tb.deployment.supervisor, Msg::ScaleDown);
    let mut waited = Time::ZERO;
    loop {
        tb.sim.run_until(tb.sim.now() + Time::from_millis(100));
        waited += Time::from_millis(100);
        if tb.deployment.sup_stats.borrow().scale_downs_completed == 1 {
            break;
        }
        if waited > Time::from_secs(10) {
            println!("   (still draining — existing connections keep it alive)");
            break;
        }
    }
    println!(
        "   replica drained and garbage-collected after {waited}; \
         connections broken: {}",
        tb.total_errors() - errs_before
    );

    let r3 = tb.measure(Time::from_millis(100), Time::from_millis(250));
    println!("1 replica : {:6.1} krps (back to steady state)", r3.krps);
    println!(
        "\nThe NIC kept existing flows pinned to the draining replica via\n\
         tracking filters while steering all new connections elsewhere —\n\
         the paper's lazy termination, which trades slower scale-down for\n\
         never aborting a connection."
    );
}
