//! Web-farm scaling demo (Figure 7 in miniature): sweep the number of
//! lighttpd-like instances against NEaT configurations and watch where
//! each configuration saturates.
//!
//! ```sh
//! cargo run --release --example webfarm
//! ```

use neat::config::NeatConfig;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_sim::Time;

fn measure(cfg: NeatConfig, webs: usize) -> (f64, Vec<f64>) {
    let mut spec = TestbedSpec::amd(cfg, webs);
    spec.workload = Workload {
        conns_per_client: 16,
        requests_per_conn: 100,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    let r = tb.measure(Time::from_millis(150), Time::from_millis(250));
    let stack_loads = tb
        .replica_threads
        .iter()
        .map(|t| tb.sim.thread_stats(*t).load(r.duration))
        .collect();
    (r.krps, stack_loads)
}

fn bar(v: f64, max: f64) -> String {
    let n = ((v / max) * 40.0) as usize;
    "█".repeat(n)
}

fn main() {
    println!("AMD 12-core web farm: request rate vs number of web instances\n");
    for (name, cfg, max_webs) in [
        ("Multi 1x", NeatConfig::multi(1), 6),
        ("NEaT 2x ", NeatConfig::single(2), 6),
        ("NEaT 3x ", NeatConfig::single(3), 6),
    ] {
        println!("--- {name} ---");
        for webs in 1..=max_webs {
            let (krps, loads) = measure(cfg.clone(), webs);
            let stack: Vec<String> = loads.iter().map(|l| format!("{:.0}%", l * 100.0)).collect();
            println!(
                "  {webs} webs: {krps:6.1} krps {}  stack loads {stack:?}",
                bar(krps, 320.0)
            );
        }
        println!();
    }
    println!(
        "Watch Multi 1x flatten once its TCP core saturates (~4 instances),\n\
         while NEaT 3x keeps scaling to all 6 instances — the paper's Figure 7."
    );
}
