//! Failover demo (§3.6, Table 3): crash stack components under live load
//! and watch the supervisor's stateless recovery — transparent for the
//! stateless components, bounded connection loss for TCP, and zero impact
//! on the other replica either way.
//!
//! ```sh
//! cargo run --release --example failover
//! ```

use neat::config::NeatConfig;
use neat::msg::Msg;
use neat::supervisor::Role;
use neat_apps::scenario::{Testbed, TestbedSpec, Workload};
use neat_sim::Time;

fn lost_conns(tb: &Testbed) -> u64 {
    tb.web_metrics
        .iter()
        .map(|m| m.borrow().conns_lost_to_crash)
        .sum()
}

fn crash_and_report(role: Role) {
    let mut spec = TestbedSpec::amd(NeatConfig::multi(2), 4);
    spec.clients = 4;
    spec.workload = Workload {
        conns_per_client: 8,
        requests_per_conn: 1_000,
        ..Workload::default()
    };
    let mut tb = Testbed::build(spec);
    let before = tb.measure(Time::from_millis(150), Time::from_millis(150));

    let pid = tb.deployment.comp_pids[0]
        .iter()
        .find(|(r, _)| *r == role)
        .map(|(_, p)| *p)
        .unwrap();
    println!("→ injecting a fault into the {role:?} component of replica 0…");
    tb.sim.send_external(pid, Msg::Poison);

    let after = tb.measure(Time::from_millis(100), Time::from_millis(300));
    let stats = tb.deployment.sup_stats.borrow().clone();
    println!(
        "   crash detected: {}   restarted: {}   TCP state lost: {}",
        stats.crashes_seen,
        stats.recoveries,
        if stats.stateful_losses > 0 {
            "yes"
        } else {
            "no"
        }
    );
    println!(
        "   connections lost: {}   client errors: {}",
        lost_conns(&tb),
        tb.total_errors()
    );
    println!(
        "   throughput: {:.1} krps before → {:.1} krps after recovery\n",
        before.krps, after.krps
    );
}

fn main() {
    println!("Multi-component NEaT 2x under load; one fault per run.\n");
    for role in [Role::Pf, Role::Ip, Role::Udp, Role::Tcp] {
        crash_and_report(role);
    }
    println!(
        "Stateless components (PF/IP/UDP) recover transparently — the effect\n\
         is no worse than a packet delay. Only the TCP component's crash\n\
         loses its replica's connections; the other replica never notices."
    );
}
